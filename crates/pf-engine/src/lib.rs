//! # pf-engine — the end-to-end Pathfinder XQuery processor
//!
//! This crate wires the full stack of Figure 1 together:
//!
//! ```text
//!   XQuery ──parse──▶ AST ──normalize──▶ core ──loop-lifting──▶ algebra plan
//!          ──peephole optimize──▶ optimized plan ──execute──▶ iter|pos|item
//!          ──serialize──▶ XML / atomic values
//! ```
//!
//! [`Pathfinder`] is the public façade: register documents (they are
//! shredded into the `pre|size|level` encoding of `pf-store`), run queries,
//! and inspect compilation stages ("look under the hood", Section 4 of the
//! paper) via [`Pathfinder::explain`].
//!
//! ```
//! use pf_engine::Pathfinder;
//!
//! let mut pf = Pathfinder::new();
//! pf.load_document("doc.xml", "<a><b>1</b><b>2</b></a>").unwrap();
//! let result = pf.query("fn:sum(fn:doc(\"doc.xml\")//b)").unwrap();
//! assert_eq!(result.to_xml(), "3");
//! ```

pub mod error;
pub mod executor;
pub mod pool;
pub mod registry;
pub mod result;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use error::{EngineError, EngineResult};
pub use executor::{
    default_fusion, default_morsel_rows, default_threads, ExecStats, Executor, OpProfile, OpTiming,
    DEFAULT_MORSEL_ROWS,
};
pub use pool::WorkerPool;
pub use registry::DocRegistry;
pub use result::{serialize_table, QueryResult, Timings};

use pf_algebra::{optimize, OptimizeReport, PhysicalPlan, Plan};
use pf_xquery::{compile, normalize, parse_query, CompileOptions};

/// Engine-level options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Options forwarded to the loop-lifting compiler.
    pub compile: CompileOptions,
    /// Run the peephole optimizer before execution (on by default).
    pub optimize: bool,
    /// Executor worker threads: `1` runs the sequential path, `0` (the
    /// default) resolves via [`default_threads`] — the `PF_THREADS`
    /// environment variable if set, otherwise the machine's available
    /// parallelism.  Results are identical at every setting.
    pub threads: usize,
    /// Fuse single-consumer operator chains into physical pipelines (the
    /// default is [`default_fusion`]: on, unless `PF_FUSION` says `0` /
    /// `false` / `off` / `no`).  Results are identical either way; fusion
    /// only changes how many intermediate tables materialize.
    pub fusion: bool,
    /// Input rows per morsel for intra-operator parallelism (partitioned
    /// sorts, row numberings, staircase shards and fused-pipeline chunks
    /// on the worker pool).  `0` (the default) resolves via
    /// [`default_morsel_rows`] — the `PF_MORSEL` environment variable if
    /// set, otherwise [`DEFAULT_MORSEL_ROWS`]; `usize::MAX` disables the
    /// partitioning.  Results, serialization and work totals are identical
    /// at every setting.
    pub morsel_rows: usize,
    /// Maximum number of compiled plans the per-engine plan cache retains;
    /// when full, the least-recently-hit plan is evicted.  `0` disables
    /// caching entirely.
    pub plan_cache_capacity: usize,
}

/// Default capacity of the per-engine plan cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            compile: CompileOptions::default(),
            optimize: true,
            threads: 0,
            fusion: default_fusion(),
            morsel_rows: 0,
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
        }
    }
}

/// Everything [`Pathfinder::explain`] reveals about a query's compilation.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The plan as produced by the loop-lifting compiler.
    pub unoptimized: Plan,
    /// The plan after peephole optimization.
    pub optimized: Plan,
    /// What the optimizer did.
    pub report: OptimizeReport,
    /// Number of `for … where` clauses compiled into joins.
    pub joins_recognized: usize,
}

impl Explain {
    /// ASCII rendering of the optimized plan.
    pub fn plan_ascii(&self) -> String {
        pf_algebra::to_ascii(&self.optimized)
    }

    /// Graphviz DOT rendering of the optimized plan.
    pub fn plan_dot(&self) -> String {
        pf_algebra::to_dot(&self.optimized)
    }
}

/// One plan-cache entry: the optimized logical plan, its physical
/// compilation (fused per the engine's `fusion` option), and the LRU
/// bookkeeping.
#[derive(Debug)]
struct CachedPlan {
    plan: Arc<Plan>,
    physical: Arc<PhysicalPlan>,
    /// Logical timestamp of the last hit (or the insertion); the entry
    /// with the smallest stamp is evicted when the cache is full.
    last_hit: u64,
}

/// The Pathfinder engine: a document registry plus the compile/execute
/// pipeline.
///
/// Compiled-and-optimized plans — *and their physical compilations* — are
/// cached per query: the compile stage dominates small-document queries,
/// and since the executor borrows operators from the plan (never clones
/// them), a cached [`Arc<Plan>`] / [`Arc<PhysicalPlan>`] pair is directly
/// reusable.  Cache keys are the query text with whitespace runs outside
/// string literals collapsed, so trivially reformatted queries share one
/// plan; the cache is capped ([`EngineOptions::plan_cache_capacity`],
/// default [`DEFAULT_PLAN_CACHE_CAPACITY`]) with least-recently-hit
/// eviction.  Cache effectiveness is reported per query via
/// [`Timings::plan_cache_hits`] / [`Timings::plan_cache_misses`].
#[derive(Debug, Default)]
pub struct Pathfinder {
    registry: DocRegistry,
    options: EngineOptions,
    plan_cache: HashMap<String, CachedPlan>,
    /// Logical clock driving the last-hit stamps.
    cache_clock: u64,
    plan_cache_hits: usize,
    plan_cache_misses: usize,
    /// The engine's persistent worker pool: created at most once (on the
    /// first parallel query) and reused for every query after — no
    /// per-query thread spawns.
    pool: Option<Arc<WorkerPool>>,
    /// How many pools this engine has ever spawned (asserted ≤ 1 by the
    /// pool-reuse tests).
    pools_created: usize,
}

impl Pathfinder {
    /// A new engine with default options.
    pub fn new() -> Self {
        Pathfinder::default()
    }

    /// A new engine with explicit options.
    pub fn with_options(options: EngineOptions) -> Self {
        Pathfinder {
            registry: DocRegistry::new(),
            options,
            ..Pathfinder::default()
        }
    }

    /// Access to the document registry (e.g. for storage statistics).
    pub fn registry(&self) -> &DocRegistry {
        &self.registry
    }

    /// Number of compiled plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Cumulative plan-cache hits and misses since this engine was created.
    pub fn plan_cache_stats(&self) -> (usize, usize) {
        (self.plan_cache_hits, self.plan_cache_misses)
    }

    /// Drop all cached plans (hit/miss counters are kept).
    pub fn clear_plan_cache(&mut self) {
        self.plan_cache.clear();
    }

    /// Shred and register an XML document under `name` (the URI passed to
    /// `fn:doc`).
    pub fn load_document(&mut self, name: &str, xml: &str) -> EngineResult<()> {
        self.registry.load_xml(name, xml)?;
        Ok(())
    }

    /// Register an already parsed document under `name`.
    pub fn load_parsed(&mut self, name: &str, doc: &pf_xml::Document) -> EngineResult<()> {
        self.registry.load_document(name, doc);
        Ok(())
    }

    /// Compile a query without executing it.
    pub fn explain(&self, query: &str) -> EngineResult<Explain> {
        let ast = parse_query(query)?;
        let core = normalize(&ast)?;
        let compiled = compile(&core, &self.options.compile)?;
        let unoptimized = compiled.plan.clone();
        let mut optimized = compiled.plan;
        let report = if self.options.optimize {
            optimize(&mut optimized)
        } else {
            OptimizeReport::default()
        };
        Ok(Explain {
            unoptimized,
            optimized,
            report,
            joins_recognized: compiled.joins_recognized,
        })
    }

    /// Parse, compile, optimize, execute and serialize `query`.
    pub fn query(&mut self, query: &str) -> EngineResult<QueryResult> {
        Ok(self.query_profiled(query)?.0)
    }

    /// Like [`Pathfinder::query`], but also report the executor's
    /// memory-discipline statistics (peak resident intermediate rows,
    /// total rows produced, evictions, fusion savings).
    pub fn query_profiled(&mut self, query: &str) -> EngineResult<(QueryResult, ExecStats)> {
        let (result, stats, _) = self.query_run(query, false)?;
        Ok((result, stats))
    }

    /// Like [`Pathfinder::query_profiled`], but additionally collect the
    /// per-operator-kind wall-time profile of the execution (the
    /// `morsel_profile` bench bin reports these at several thread counts).
    pub fn query_op_profiled(
        &mut self,
        query: &str,
    ) -> EngineResult<(QueryResult, ExecStats, OpProfile)> {
        self.query_run(query, true)
    }

    fn query_run(
        &mut self,
        query: &str,
        profile_ops: bool,
    ) -> EngineResult<(QueryResult, ExecStats, OpProfile)> {
        let (plan, physical, compile_time, optimize_time) = self.plan_for(query)?;

        let exec_start = Instant::now();
        let threads = if self.options.threads == 0 {
            default_threads()
        } else {
            self.options.threads
        };
        // Resolve the pool before the executor borrows the registry.
        let pool = (threads > 1).then(|| self.worker_pool(threads));
        let mut executor = Executor::with_threads(&self.registry, threads)
            .with_fusion(self.options.fusion)
            .with_morsel_rows(self.options.morsel_rows)
            .with_op_profile(profile_ops);
        if let Some(pool) = pool {
            executor = executor.with_pool(pool);
        }
        let (table, stats, profile) = executor.run_physical_profiled(&plan, &physical)?;
        let execute_time = exec_start.elapsed();

        let result = QueryResult::from_table(
            table,
            &self.registry,
            Timings {
                compile: compile_time,
                optimize: optimize_time,
                execute: execute_time,
                plan_cache_hits: self.plan_cache_hits,
                plan_cache_misses: self.plan_cache_misses,
            },
        )?;
        Ok((result, stats, profile))
    }

    /// The engine's persistent worker pool, created on first use and
    /// reused for every subsequent query (executors are built per query,
    /// but they all run on this one pool — the per-query `thread::scope`
    /// spawn/join of the earlier executor is gone).
    fn worker_pool(&mut self, threads: usize) -> Arc<WorkerPool> {
        if self.pool.is_none() {
            self.pool = Some(Arc::new(WorkerPool::new(threads.saturating_sub(1))));
            self.pools_created += 1;
        }
        Arc::clone(self.pool.as_ref().expect("pool was just created"))
    }

    /// How many worker pools this engine has spawned so far (stays at 1
    /// however many parallel queries run; 0 until the first one).
    pub fn worker_pool_spawns(&self) -> usize {
        self.pools_created
    }

    /// The generation stamp of the engine's pool (see
    /// [`WorkerPool::generation`]); `None` before the first parallel
    /// query.
    pub fn worker_pool_generation(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.generation())
    }

    /// The compiled-and-optimized plan for `query`, with its physical
    /// compilation: served from the plan cache when possible, compiled
    /// (and cached) otherwise.  Returns the plans with the compile and
    /// optimize stage timings — both [`Duration::ZERO`] on a cache hit,
    /// because the stages are skipped entirely.
    #[allow(clippy::type_complexity)]
    fn plan_for(
        &mut self,
        query: &str,
    ) -> EngineResult<(Arc<Plan>, Arc<PhysicalPlan>, Duration, Duration)> {
        let key = normalize_cache_key(query);
        if let Some(cached) = self.plan_cache.get_mut(&key) {
            self.plan_cache_hits += 1;
            self.cache_clock += 1;
            cached.last_hit = self.cache_clock;
            return Ok((
                Arc::clone(&cached.plan),
                Arc::clone(&cached.physical),
                Duration::ZERO,
                Duration::ZERO,
            ));
        }
        let started = Instant::now();
        let ast = parse_query(query)?;
        let core = normalize(&ast)?;
        let compiled = compile(&core, &self.options.compile)?;
        let compile_time = started.elapsed();

        let opt_start = Instant::now();
        let mut plan = compiled.plan;
        if self.options.optimize {
            optimize(&mut plan);
        }
        let physical = Arc::new(PhysicalPlan::compile(&plan, self.options.fusion));
        let optimize_time = opt_start.elapsed();

        self.plan_cache_misses += 1;
        let plan = Arc::new(plan);
        if self.options.plan_cache_capacity > 0 {
            self.cache_clock += 1;
            self.plan_cache.insert(
                key,
                CachedPlan {
                    plan: Arc::clone(&plan),
                    physical: Arc::clone(&physical),
                    last_hit: self.cache_clock,
                },
            );
            if self.plan_cache.len() > self.options.plan_cache_capacity {
                // Evict the least-recently-hit entry.  A linear scan is
                // fine at the default capacity of 256; the cache is per
                // engine and off the execution hot path.
                if let Some(coldest) = self
                    .plan_cache
                    .iter()
                    .min_by_key(|(_, entry)| entry.last_hit)
                    .map(|(k, _)| k.clone())
                {
                    self.plan_cache.remove(&coldest);
                }
            }
        }
        Ok((plan, physical, compile_time, optimize_time))
    }
}

/// Normalize a query text into its plan-cache key: collapse every run of
/// whitespace *outside string literals* into a single space and trim the
/// ends, so trivially reformatted queries share one cached plan.  String
/// literal bodies are copied verbatim (whitespace inside them is
/// significant), and whitespace runs are never removed entirely — only
/// collapsed — so two queries with different token boundaries can never
/// fold onto the same key.  Comments `(: … :)` (which may nest, per the
/// lexer) are tracked so a quote character *inside* a comment does not
/// desynchronize the literal tracking; comment bodies themselves are
/// whitespace-collapsed like code, which is safe because the lexer
/// discards them.
///
/// Public so the invariant — *distinct queries never fold onto one key* —
/// can be property-tested from outside the crate; it is not part of the
/// stable engine API.
pub fn normalize_cache_key(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    let mut chars = query.chars().peekable();
    let mut pending_space = false;
    let mut comment_depth = 0usize;
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        out.push(c);
        if c == '(' && chars.peek() == Some(&':') {
            out.push(chars.next().expect("peeked"));
            comment_depth += 1;
            continue;
        }
        if comment_depth > 0 {
            // Inside a comment quotes are plain text; only watch for the
            // (possibly nested) comment delimiters.
            if c == ':' && chars.peek() == Some(&')') {
                out.push(chars.next().expect("peeked"));
                comment_depth -= 1;
            }
            continue;
        }
        if c == '"' || c == '\'' {
            // Copy the literal body verbatim up to (and including) the
            // closing quote.  Doubled quotes — the XQuery escape — read as
            // one literal closing and the next immediately reopening,
            // which round-trips unchanged through this loop.
            for body in chars.by_ref() {
                out.push(body);
                if body == c {
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> Pathfinder {
        let mut pf = Pathfinder::new();
        pf.load_document("doc.xml", xml).unwrap();
        pf
    }

    #[test]
    fn arithmetic_without_documents() {
        let mut pf = Pathfinder::new();
        assert_eq!(pf.query("1 + 2 * 3").unwrap().to_xml(), "7");
        assert_eq!(pf.query("(1, 2, 3)").unwrap().to_xml(), "1 2 3");
        assert_eq!(
            pf.query("if (1 = 1) then \"yes\" else \"no\"")
                .unwrap()
                .to_xml(),
            "yes"
        );
    }

    #[test]
    fn figure3_nested_flwor() {
        let mut pf = Pathfinder::new();
        let r = pf
            .query("for $v in (10,20), $w in (100,200) return $v + $w")
            .unwrap();
        assert_eq!(r.to_xml(), "110 210 120 220");
    }

    #[test]
    fn figure5_query() {
        let mut pf = Pathfinder::new();
        let r = pf.query("for $v in (10,20) return $v + 100").unwrap();
        assert_eq!(r.to_xml(), "110 120");
    }

    #[test]
    fn path_queries_over_documents() {
        let mut pf = engine_with("<site><person id=\"p0\"><name>Ann</name></person><person id=\"p1\"><name>Bo</name></person></site>");
        assert_eq!(
            pf.query("fn:count(fn:doc(\"doc.xml\")//person)")
                .unwrap()
                .to_xml(),
            "2"
        );
        assert_eq!(
            pf.query("fn:doc(\"doc.xml\")//person[@id = \"p1\"]/name/text()")
                .unwrap()
                .to_xml(),
            "Bo"
        );
        // Adjacent text nodes serialize without a separator (only atomic
        // values are space separated).
        assert_eq!(
            pf.query("for $p in fn:doc(\"doc.xml\")//person return $p/name/text()")
                .unwrap()
                .to_xml(),
            "AnnBo"
        );
        assert_eq!(
            pf.query("for $p in fn:doc(\"doc.xml\")//person return fn:string($p/name)")
                .unwrap()
                .to_xml(),
            "Ann Bo"
        );
    }

    #[test]
    fn element_construction() {
        let mut pf = engine_with("<a><b>1</b><b>2</b></a>");
        let r = pf
            .query("element out { attribute n { fn:count(fn:doc(\"doc.xml\")//b) }, text { \"total\" } }")
            .unwrap();
        assert_eq!(r.to_xml(), "<out n=\"2\">total</out>");
    }

    #[test]
    fn explain_reports_plan_shrinkage() {
        let pf = engine_with("<a/>");
        let explain = pf.explain("fn:doc(\"doc.xml\")//a/b/c").unwrap();
        assert!(explain.report.operators_after <= explain.report.operators_before);
        assert!(explain.plan_ascii().contains("⇝"));
        assert!(explain.plan_dot().starts_with("digraph"));
    }

    #[test]
    fn unknown_document_is_an_error() {
        let mut pf = Pathfinder::new();
        assert!(pf.query("fn:doc(\"missing.xml\")//a").is_err());
    }

    #[test]
    fn plan_cache_skips_the_compile_stage_on_the_second_run() {
        let mut pf = engine_with("<a><b>1</b><b>2</b></a>");
        let q = "fn:count(fn:doc(\"doc.xml\")//b)";

        let first = pf.query(q).unwrap();
        assert_eq!(first.to_xml(), "2");
        assert_eq!(first.timings().plan_cache_hits, 0);
        assert_eq!(first.timings().plan_cache_misses, 1);
        assert!(first.timings().compile > std::time::Duration::ZERO);
        assert_eq!(pf.plan_cache_len(), 1);

        let second = pf.query(q).unwrap();
        assert_eq!(second.to_xml(), "2");
        assert_eq!(second.timings().plan_cache_hits, 1);
        assert_eq!(second.timings().plan_cache_misses, 1);
        // The compile and optimize stages did not run at all.
        assert_eq!(second.timings().compile, std::time::Duration::ZERO);
        assert_eq!(second.timings().optimize, std::time::Duration::ZERO);
        assert_eq!(pf.plan_cache_stats(), (1, 1));

        // A different query is a miss; clearing drops the plans but keeps
        // the counters.
        pf.query("1 + 1").unwrap();
        assert_eq!(pf.plan_cache_stats(), (1, 2));
        assert_eq!(pf.plan_cache_len(), 2);
        pf.clear_plan_cache();
        assert_eq!(pf.plan_cache_len(), 0);
        assert_eq!(pf.plan_cache_stats(), (1, 2));
    }

    #[test]
    fn reformatted_queries_share_one_cached_plan() {
        let mut pf = engine_with("<a><b>1</b><b>2</b></a>");
        let q = "for $b in fn:doc(\"doc.xml\")//b return fn:string($b)";
        assert_eq!(pf.query(q).unwrap().to_xml(), "1 2");
        // The same query reformatted — indentation, newlines and doubled
        // spaces outside string literals collapse onto the cached key.
        let reformatted = "for  $b in\n    fn:doc(\"doc.xml\")//b\n  return fn:string($b)";
        assert_eq!(pf.query(reformatted).unwrap().to_xml(), "1 2");
        assert_eq!(pf.plan_cache_stats(), (1, 1), "reformat must hit");
        assert_eq!(pf.plan_cache_len(), 1);

        // Whitespace *inside* a string literal is significant: a different
        // literal body is a different plan.
        pf.query("fn:concat(\"a b\", \"c\")").unwrap();
        pf.query("fn:concat(\"a  b\", \"c\")").unwrap();
        assert_eq!(pf.plan_cache_stats(), (1, 3));
        assert_eq!(pf.plan_cache_len(), 3);
    }

    #[test]
    fn normalization_collapses_outside_literals_only() {
        assert_eq!(
            normalize_cache_key("  for   $x in\n\t(1,2)\nreturn $x  "),
            "for $x in (1,2) return $x"
        );
        // Literal bodies survive verbatim, including the doubled-quote
        // escape and the other quote kind.
        assert_eq!(
            normalize_cache_key("concat(\"a  b\",  'c  d')"),
            "concat(\"a  b\", 'c  d')"
        );
        assert_eq!(
            normalize_cache_key("\"he said \"\"hi   there\"\"\""),
            "\"he said \"\"hi   there\"\"\""
        );
        // Collapsing never merges tokens: `a - b` and `a-b` stay distinct.
        assert_ne!(normalize_cache_key("a - b"), normalize_cache_key("a-b"));
        // An unterminated literal simply runs to the end without panicking.
        assert_eq!(normalize_cache_key("\"open  end"), "\"open  end");
    }

    #[test]
    fn quotes_inside_comments_do_not_desync_literal_tracking() {
        // A quote inside a comment must not open a pseudo-literal: the
        // literal after the comment keeps its body verbatim, so these two
        // queries (different string contents) get different cache keys.
        let a = normalize_cache_key("(: \" :) \"a  b\"");
        let b = normalize_cache_key("(: \" :) \"a b\"");
        assert_ne!(a, b);
        assert!(a.ends_with("\"a  b\""), "literal body collapsed: {a}");
        // Nested comments close correctly too.
        let nested = normalize_cache_key("(: x (: ' :) y :) 'c  d'");
        assert!(
            nested.ends_with("'c  d'"),
            "literal body collapsed: {nested}"
        );
        // Unterminated comments run to the end without panicking.
        assert_eq!(normalize_cache_key("(: open   comment"), "(: open comment");
    }

    #[test]
    fn plan_cache_evicts_the_least_recently_hit_plan() {
        let mut pf = Pathfinder::with_options(EngineOptions {
            plan_cache_capacity: 2,
            ..EngineOptions::default()
        });
        pf.query("1 + 1").unwrap();
        pf.query("2 + 2").unwrap();
        assert_eq!(pf.plan_cache_len(), 2);
        // Touch "1 + 1" so "2 + 2" becomes the coldest entry…
        pf.query("1 + 1").unwrap();
        // …and a third query evicts it.
        pf.query("3 + 3").unwrap();
        assert_eq!(pf.plan_cache_len(), 2);
        let (hits, misses) = pf.plan_cache_stats();
        assert_eq!((hits, misses), (1, 3));
        // "1 + 1" is still cached; "2 + 2" was evicted and recompiles.
        pf.query("1 + 1").unwrap();
        assert_eq!(pf.plan_cache_stats().0, 2);
        pf.query("2 + 2").unwrap();
        assert_eq!(pf.plan_cache_stats(), (2, 4));
    }

    #[test]
    fn zero_capacity_disables_the_plan_cache() {
        let mut pf = Pathfinder::with_options(EngineOptions {
            plan_cache_capacity: 0,
            ..EngineOptions::default()
        });
        pf.query("1 + 1").unwrap();
        pf.query("1 + 1").unwrap();
        assert_eq!(pf.plan_cache_len(), 0);
        assert_eq!(pf.plan_cache_stats(), (0, 2));
    }

    #[test]
    fn fusion_on_and_off_serialize_identically() {
        let make = |fusion: bool| {
            let mut pf = Pathfinder::with_options(EngineOptions {
                fusion,
                ..EngineOptions::default()
            });
            pf.load_document(
                "doc.xml",
                "<site><p><n>Ann</n><x>3</x></p><p><n>Bo</n><x>9</x></p></site>",
            )
            .unwrap();
            pf
        };
        let q = "for $p in fn:doc(\"doc.xml\")//p where $p/x > 5 return fn:string($p/n)";
        let (on, on_stats) = make(true).query_profiled(q).unwrap();
        let (off, off_stats) = make(false).query_profiled(q).unwrap();
        assert_eq!(on.to_xml(), off.to_xml());
        assert_eq!(on_stats.operators_evaluated, off_stats.operators_evaluated);
        assert!(on_stats.tables_elided > 0, "this plan has fusable chains");
        assert_eq!(off_stats.tables_elided, 0);
    }

    #[test]
    fn cached_plans_see_reloaded_documents() {
        // The cache is keyed by query text only: plans reference documents
        // by URI, resolved at execution time, so reloading a document does
        // not serve stale results.
        let mut pf = engine_with("<a><b>1</b></a>");
        let q = "fn:count(fn:doc(\"doc.xml\")//b)";
        assert_eq!(pf.query(q).unwrap().to_xml(), "1");
        pf.load_document("doc.xml", "<a><b>1</b><b>2</b><b>3</b></a>")
            .unwrap();
        assert_eq!(pf.query(q).unwrap().to_xml(), "3");
        assert_eq!(pf.plan_cache_stats(), (1, 1));
    }

    #[test]
    fn the_worker_pool_is_created_once_per_engine_and_reused() {
        let mut pf = Pathfinder::with_options(EngineOptions {
            threads: 4,
            ..EngineOptions::default()
        });
        pf.load_document("doc.xml", "<a><b>1</b><b>2</b><c>3</c></a>")
            .unwrap();
        assert_eq!(pf.worker_pool_spawns(), 0, "no pool before the first query");
        assert!(pf.worker_pool_generation().is_none());

        // A query with independent branches exercises the parallel path.
        let q = "fn:count(fn:doc(\"doc.xml\")//b) + fn:count(fn:doc(\"doc.xml\")//c)";
        assert_eq!(pf.query(q).unwrap().to_xml(), "3");
        assert_eq!(pf.worker_pool_spawns(), 1);
        let generation = pf.worker_pool_generation().expect("pool exists now");

        // Ten more queries (cache hits and misses alike): still one pool,
        // same generation — no per-query thread spawn.
        for i in 0..10 {
            pf.query(q).unwrap();
            pf.query(&format!("{i} + {i}")).unwrap();
        }
        assert_eq!(pf.worker_pool_spawns(), 1);
        assert_eq!(pf.worker_pool_generation(), Some(generation));
    }

    #[test]
    fn sequential_engines_never_spawn_a_pool() {
        let mut pf = Pathfinder::with_options(EngineOptions {
            threads: 1,
            ..EngineOptions::default()
        });
        pf.query("1 + 1").unwrap();
        assert_eq!(pf.worker_pool_spawns(), 0);
    }

    #[test]
    fn morsel_sizes_do_not_change_results_or_work_totals() {
        let make = |morsel_rows: usize| {
            let mut pf = Pathfinder::with_options(EngineOptions {
                threads: 4,
                morsel_rows,
                ..EngineOptions::default()
            });
            pf.load_document(
                "doc.xml",
                "<site><p><n>Ann</n><x>3</x></p><p><n>Bo</n><x>9</x></p><p><n>Cy</n><x>7</x></p></site>",
            )
            .unwrap();
            pf
        };
        let q = "for $p in fn:doc(\"doc.xml\")//p where $p/x > 5 return fn:string($p/n)";
        let (reference, ref_stats) = make(usize::MAX).query_profiled(q).unwrap();
        for morsel in [1, 2, 0] {
            let (result, stats) = make(morsel).query_profiled(q).unwrap();
            assert_eq!(reference.to_xml(), result.to_xml(), "morsel_rows {morsel}");
            assert_eq!(ref_stats.rows_produced, stats.rows_produced);
            assert_eq!(ref_stats.operators_evaluated, stats.operators_evaluated);
            assert_eq!(ref_stats.cells_produced, stats.cells_produced);
            assert_eq!(ref_stats.evicted_results, stats.evicted_results);
        }
    }

    #[test]
    fn op_profile_reports_per_operator_timings() {
        let mut pf = engine_with("<a><b>1</b><b>2</b></a>");
        let (result, _, profile) = pf
            .query_op_profiled("fn:count(fn:doc(\"doc.xml\")//b)")
            .unwrap();
        assert_eq!(result.to_xml(), "2");
        assert!(!profile.entries.is_empty());
        let kinds: Vec<&str> = profile.entries.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"step"), "kinds: {kinds:?}");
        // Entries are sorted by kind and cover every evaluated node.
        let mut sorted = kinds.clone();
        sorted.sort_unstable();
        assert_eq!(kinds, sorted);
        // The plain profiled path collects no per-op timings (zero cost).
        let (_, _) = pf.query_profiled("1 + 1").unwrap();
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let make = |threads: usize| {
            let mut pf = Pathfinder::with_options(EngineOptions {
                threads,
                ..EngineOptions::default()
            });
            pf.load_document(
                "doc.xml",
                "<site><p><n>Ann</n></p><p><n>Bo</n></p><q>9</q></site>",
            )
            .unwrap();
            pf
        };
        let q = "for $p in fn:doc(\"doc.xml\")//p return element row { $p/n/text() }";
        let sequential = make(1).query(q).unwrap();
        let parallel = make(4).query(q).unwrap();
        assert_eq!(sequential.to_xml(), parallel.to_xml());
        assert_eq!(sequential.len(), parallel.len());
    }
}
