//! # pf-engine — the end-to-end Pathfinder XQuery processor
//!
//! This crate wires the full stack of Figure 1 together:
//!
//! ```text
//!   XQuery ──parse──▶ AST ──normalize──▶ core ──loop-lifting──▶ algebra plan
//!          ──peephole optimize──▶ optimized plan ──execute──▶ iter|pos|item
//!          ──serialize──▶ XML / atomic values
//! ```
//!
//! [`Pathfinder`] is the public façade: register documents (they are
//! shredded into the `pre|size|level` encoding of `pf-store`), run queries,
//! and inspect compilation stages ("look under the hood", Section 4 of the
//! paper) via [`Pathfinder::explain`].
//!
//! ```
//! use pf_engine::Pathfinder;
//!
//! let mut pf = Pathfinder::new();
//! pf.load_document("doc.xml", "<a><b>1</b><b>2</b></a>").unwrap();
//! let result = pf.query("fn:sum(fn:doc(\"doc.xml\")//b)").unwrap();
//! assert_eq!(result.to_xml(), "3");
//! ```

pub mod error;
pub mod executor;
pub mod registry;
pub mod result;

use std::time::Instant;

pub use error::{EngineError, EngineResult};
pub use executor::{ExecStats, Executor};
pub use registry::DocRegistry;
pub use result::{QueryResult, Timings};

use pf_algebra::{optimize, OptimizeReport, Plan};
use pf_xquery::{compile, normalize, parse_query, CompileOptions};

/// Engine-level options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Options forwarded to the loop-lifting compiler.
    pub compile: CompileOptions,
    /// Run the peephole optimizer before execution (on by default).
    pub optimize: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            compile: CompileOptions::default(),
            optimize: true,
        }
    }
}

/// Everything [`Pathfinder::explain`] reveals about a query's compilation.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The plan as produced by the loop-lifting compiler.
    pub unoptimized: Plan,
    /// The plan after peephole optimization.
    pub optimized: Plan,
    /// What the optimizer did.
    pub report: OptimizeReport,
    /// Number of `for … where` clauses compiled into joins.
    pub joins_recognized: usize,
}

impl Explain {
    /// ASCII rendering of the optimized plan.
    pub fn plan_ascii(&self) -> String {
        pf_algebra::to_ascii(&self.optimized)
    }

    /// Graphviz DOT rendering of the optimized plan.
    pub fn plan_dot(&self) -> String {
        pf_algebra::to_dot(&self.optimized)
    }
}

/// The Pathfinder engine: a document registry plus the compile/execute
/// pipeline.
#[derive(Debug, Default)]
pub struct Pathfinder {
    registry: DocRegistry,
    options: EngineOptions,
}

impl Pathfinder {
    /// A new engine with default options.
    pub fn new() -> Self {
        Pathfinder::default()
    }

    /// A new engine with explicit options.
    pub fn with_options(options: EngineOptions) -> Self {
        Pathfinder {
            registry: DocRegistry::new(),
            options,
        }
    }

    /// Access to the document registry (e.g. for storage statistics).
    pub fn registry(&self) -> &DocRegistry {
        &self.registry
    }

    /// Shred and register an XML document under `name` (the URI passed to
    /// `fn:doc`).
    pub fn load_document(&mut self, name: &str, xml: &str) -> EngineResult<()> {
        self.registry.load_xml(name, xml)?;
        Ok(())
    }

    /// Register an already parsed document under `name`.
    pub fn load_parsed(&mut self, name: &str, doc: &pf_xml::Document) -> EngineResult<()> {
        self.registry.load_document(name, doc);
        Ok(())
    }

    /// Compile a query without executing it.
    pub fn explain(&self, query: &str) -> EngineResult<Explain> {
        let ast = parse_query(query)?;
        let core = normalize(&ast)?;
        let compiled = compile(&core, &self.options.compile)?;
        let unoptimized = compiled.plan.clone();
        let mut optimized = compiled.plan;
        let report = if self.options.optimize {
            optimize(&mut optimized)
        } else {
            OptimizeReport::default()
        };
        Ok(Explain {
            unoptimized,
            optimized,
            report,
            joins_recognized: compiled.joins_recognized,
        })
    }

    /// Parse, compile, optimize, execute and serialize `query`.
    pub fn query(&mut self, query: &str) -> EngineResult<QueryResult> {
        Ok(self.query_profiled(query)?.0)
    }

    /// Like [`Pathfinder::query`], but also report the executor's
    /// memory-discipline statistics (peak resident intermediate rows,
    /// total rows produced, evictions).
    pub fn query_profiled(&mut self, query: &str) -> EngineResult<(QueryResult, ExecStats)> {
        let started = Instant::now();
        let ast = parse_query(query)?;
        let core = normalize(&ast)?;
        let compiled = compile(&core, &self.options.compile)?;
        let compile_time = started.elapsed();

        let opt_start = Instant::now();
        let mut plan = compiled.plan;
        if self.options.optimize {
            optimize(&mut plan);
        }
        let optimize_time = opt_start.elapsed();

        let exec_start = Instant::now();
        let mut executor = Executor::new(&mut self.registry);
        let (table, stats) = executor.run_with_stats(&plan)?;
        let execute_time = exec_start.elapsed();

        let result = QueryResult::from_table(
            &table,
            &self.registry,
            Timings {
                compile: compile_time,
                optimize: optimize_time,
                execute: execute_time,
            },
        )?;
        Ok((result, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> Pathfinder {
        let mut pf = Pathfinder::new();
        pf.load_document("doc.xml", xml).unwrap();
        pf
    }

    #[test]
    fn arithmetic_without_documents() {
        let mut pf = Pathfinder::new();
        assert_eq!(pf.query("1 + 2 * 3").unwrap().to_xml(), "7");
        assert_eq!(pf.query("(1, 2, 3)").unwrap().to_xml(), "1 2 3");
        assert_eq!(
            pf.query("if (1 = 1) then \"yes\" else \"no\"")
                .unwrap()
                .to_xml(),
            "yes"
        );
    }

    #[test]
    fn figure3_nested_flwor() {
        let mut pf = Pathfinder::new();
        let r = pf
            .query("for $v in (10,20), $w in (100,200) return $v + $w")
            .unwrap();
        assert_eq!(r.to_xml(), "110 210 120 220");
    }

    #[test]
    fn figure5_query() {
        let mut pf = Pathfinder::new();
        let r = pf.query("for $v in (10,20) return $v + 100").unwrap();
        assert_eq!(r.to_xml(), "110 120");
    }

    #[test]
    fn path_queries_over_documents() {
        let mut pf = engine_with("<site><person id=\"p0\"><name>Ann</name></person><person id=\"p1\"><name>Bo</name></person></site>");
        assert_eq!(
            pf.query("fn:count(fn:doc(\"doc.xml\")//person)")
                .unwrap()
                .to_xml(),
            "2"
        );
        assert_eq!(
            pf.query("fn:doc(\"doc.xml\")//person[@id = \"p1\"]/name/text()")
                .unwrap()
                .to_xml(),
            "Bo"
        );
        // Adjacent text nodes serialize without a separator (only atomic
        // values are space separated).
        assert_eq!(
            pf.query("for $p in fn:doc(\"doc.xml\")//person return $p/name/text()")
                .unwrap()
                .to_xml(),
            "AnnBo"
        );
        assert_eq!(
            pf.query("for $p in fn:doc(\"doc.xml\")//person return fn:string($p/name)")
                .unwrap()
                .to_xml(),
            "Ann Bo"
        );
    }

    #[test]
    fn element_construction() {
        let mut pf = engine_with("<a><b>1</b><b>2</b></a>");
        let r = pf
            .query("element out { attribute n { fn:count(fn:doc(\"doc.xml\")//b) }, text { \"total\" } }")
            .unwrap();
        assert_eq!(r.to_xml(), "<out n=\"2\">total</out>");
    }

    #[test]
    fn explain_reports_plan_shrinkage() {
        let pf = engine_with("<a/>");
        let explain = pf.explain("fn:doc(\"doc.xml\")//a/b/c").unwrap();
        assert!(explain.report.operators_after <= explain.report.operators_before);
        assert!(explain.plan_ascii().contains("⇝"));
        assert!(explain.plan_dot().starts_with("digraph"));
    }

    #[test]
    fn unknown_document_is_an_error() {
        let mut pf = Pathfinder::new();
        assert!(pf.query("fn:doc(\"missing.xml\")//a").is_err());
    }
}
