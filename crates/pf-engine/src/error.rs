//! Engine error type: wraps the errors of every layer of the stack.

use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// An error raised anywhere in the parse → compile → execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// XML parsing failed while loading a document.
    Xml(pf_xml::XmlError),
    /// The query could not be parsed / normalized / compiled.
    Frontend(pf_xquery::XqError),
    /// A physical operator failed during execution.
    Execution(pf_relational::RelError),
    /// Engine-level problem (unknown document, malformed plan, …).
    Engine(String),
}

impl EngineError {
    /// Engine-level error with a message.
    pub fn msg(message: impl Into<String>) -> Self {
        EngineError::Engine(message.into())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "{e}"),
            EngineError::Frontend(e) => write!(f, "{e}"),
            EngineError::Execution(e) => write!(f, "{e}"),
            EngineError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<pf_xml::XmlError> for EngineError {
    fn from(e: pf_xml::XmlError) -> Self {
        EngineError::Xml(e)
    }
}

impl From<pf_xquery::XqError> for EngineError {
    fn from(e: pf_xquery::XqError) -> Self {
        EngineError::Frontend(e)
    }
}

impl From<pf_relational::RelError> for EngineError {
    fn from(e: pf_relational::RelError) -> Self {
        EngineError::Execution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = pf_xml::XmlError::new("bad", 0).into();
        assert!(e.to_string().contains("bad"));
        let e: EngineError = pf_relational::RelError::new("col").into();
        assert!(e.to_string().contains("col"));
        let e = EngineError::msg("no such document");
        assert!(e.to_string().contains("no such document"));
    }
}
