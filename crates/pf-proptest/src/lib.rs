//! A minimal property-based testing harness exposing the subset of the
//! `proptest` crate's API that this workspace's test suites use.
//!
//! Consumers depend on it under the name `proptest` (Cargo dependency
//! rename), so the test files read exactly like standard proptest code.
//! Inside a `#[test]`-annotated block the macro produces ordinary test
//! functions:
//!
//! ```
//! use pf_proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```
//!
//! Supported strategies: integer and float ranges (`0u8..5`,
//! `-1.0f64..1.0`), `proptest::bool::ANY`, tuples of strategies,
//! `proptest::collection::vec(elem, len_range)`, string strategies written
//! as a simple character-class regex (`"[ a-z0-9]{0,12}"`), and the
//! combinators `prop_map`, `prop_flat_map`, `boxed` and `prop_oneof!`
//! (plus `prop_assume!`, which skips the case instead of resampling).
//! Cases are generated from a deterministic seed (override with
//! `PF_PROPTEST_SEED`); failures report the case number and seed instead
//! of shrinking.

#![forbid(unsafe_code)]

/// Strategy trait and implementations for primitive generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Extension adapters mirroring the real crate's combinator methods.
    pub trait StrategyExt: Strategy + Sized {
        /// Map generated values through `f` (`Strategy::prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value and draw
        /// from it (`Strategy::prop_flat_map`) — e.g. pick a length, then
        /// generate collections of exactly that length.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy (`Strategy::boxed`), so differently
        /// shaped strategies of one value type unify (the real crate's
        /// `BoxedStrategy<T>`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + Sized> StrategyExt for S {}

    /// A type-erased strategy (`proptest::strategy::BoxedStrategy`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// The [`StrategyExt::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The [`StrategyExt::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value
    /// (`proptest::prelude::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies of one value type — the
    /// engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].generate(rng)
        }
    }

    /// Box a strategy for [`Union`] (used by the `prop_oneof!` expansion;
    /// a function rather than an `as` cast so type inference connects the
    /// arms' value types).
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// String strategy: a pattern of the form `[class]{lo,hi}` (also
    /// `{n}`, `*`, `+`), where the class lists literal characters and
    /// `a-z`-style ranges. This covers the character-class regexes used in
    /// the workspace tests; anything else panics with a clear message.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self);
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        fn fail(pattern: &str) -> ! {
            panic!("pf-proptest string strategies support only \"[class]{{lo,hi}}\" patterns, got {pattern:?}")
        }
        let unsupported = || -> ! { fail(pattern) };
        let mut chars = pattern.chars().peekable();
        if chars.next() != Some('[') {
            unsupported();
        }
        let mut alphabet = Vec::new();
        loop {
            let c = match chars.next() {
                Some(']') => break,
                Some('\\') => chars.next().unwrap_or_else(|| unsupported()),
                Some(c) => c,
                None => unsupported(),
            };
            if chars.peek() == Some(&'-') {
                chars.next();
                match chars.peek() {
                    // Trailing '-' before ']' is a literal dash.
                    Some(']') | None => {
                        alphabet.push(c);
                        alphabet.push('-');
                    }
                    Some(_) => {
                        let end = chars.next().unwrap();
                        assert!(c <= end, "invalid class range {c}-{end} in {pattern:?}");
                        alphabet.extend(c..=end);
                    }
                }
            } else {
                alphabet.push(c);
            }
        }
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        let quantifier: String = chars.collect();
        let (lo, hi) = match quantifier.as_str() {
            "" => (1, 1),
            "*" => (0, 8),
            "+" => (1, 8),
            q if q.starts_with('{') && q.ends_with('}') => {
                let body = &q[1..q.len() - 1];
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().unwrap_or_else(|_| unsupported()),
                        hi.trim().parse::<usize>().unwrap_or_else(|_| unsupported()),
                    ),
                    None => {
                        let n = body
                            .trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| unsupported());
                        (n, n)
                    }
                }
            }
            _ => unsupported(),
        };
        assert!(lo <= hi, "empty quantifier range in {pattern:?}");
        (alphabet, lo, hi)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `E` and a length range.
    pub struct VecStrategy<E> {
        element: E,
        len: Range<usize>,
    }

    /// Generate `Vec`s whose lengths fall in `len` (half-open, like
    /// `proptest::collection::vec`).
    pub fn vec<E: Strategy>(element: E, len: Range<usize>) -> VecStrategy<E> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Test-runner configuration and driver.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases to run per property (and the base RNG seed).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives one property: generates a fresh RNG per case and reports the
    /// failing case number and seed on panic.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Build a runner; the seed comes from `PF_PROPTEST_SEED` when set.
        pub fn new(config: ProptestConfig) -> Self {
            let seed = std::env::var("PF_PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5041_5448_4649_4e44); // "PATHFIND"
            TestRunner { config, seed }
        }

        /// Run `case` once per configured case with a per-case RNG.
        pub fn run(&mut self, mut case: impl FnMut(&mut StdRng)) {
            for case_index in 0..self.config.cases {
                let case_seed = self.seed.wrapping_add(u64::from(case_index));
                let mut rng = StdRng::seed_from_u64(case_seed);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    case(&mut rng);
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "property failed at case {case_index} (seed {case_seed}; \
                         rerun with PF_PROPTEST_SEED={case_seed} and cases=1 to reproduce)"
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Everything a proptest-style test file needs in scope.
///
/// Deliberately does not re-export the `bool` module (test files reach it
/// as `proptest::bool::ANY`): importing a module named `bool` would shadow
/// the primitive type in type positions.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, StrategyExt};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform-choice selection strategies (`proptest::sample::select`).
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The [`select`] strategy.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Pick uniformly from `options` (cloned per case); must be non-empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Choose uniformly between strategy arms that share one value type
/// (`proptest::prop_oneof!`; weights are not supported by the shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition
/// (`proptest::prop_assume!`).  The shim simply returns from the case
/// body instead of resampling, which keeps the case count but never
/// fails — acceptable for the filter rates the workspace tests use.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config); $($rest)*);
    };
    (@body ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                #[allow(unused_parens)]
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = crate::collection::vec((0u8..5, crate::bool::ANY), 1..60);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 60);
            assert!(v.iter().all(|(x, _)| *x < 5));
        }
    }

    #[test]
    fn string_class_pattern_generates_members() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = "[ a-zA-Z0-9<>&']{0,12}";
        let mut max_len = 0;
        for _ in 0..500 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 12);
            max_len = max_len.max(s.len());
            assert!(s
                .chars()
                .all(|c| c == ' ' || c.is_ascii_alphanumeric() || "<>&'".contains(c)));
        }
        assert!(
            max_len >= 10,
            "length distribution should reach near the cap"
        );
    }

    #[test]
    fn fixed_count_quantifier() {
        let mut rng = StdRng::seed_from_u64(3);
        let s: String = Strategy::generate(&"[ab]{4}", &mut rng);
        assert_eq!(s.len(), 4);
    }

    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(a in 0u32..10, b in 0u32..10) {
            crate::prop_assert!(a < 10);
            crate::prop_assert_eq!(a + b, b + a);
            crate::prop_assert_ne!(a, a + b + 1);
        }
    }
}
