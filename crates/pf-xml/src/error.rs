//! Error type shared by the XML parser and serializer.

use std::fmt;

/// Result alias used throughout `pf-xml`.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error raised while parsing an XML document.
///
/// The parser is non-validating, so only well-formedness violations are
/// reported.  Every error carries the byte offset at which it was detected
/// so that callers (e.g. the XMark generator round-trip tests) can point at
/// the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human readable description of the problem.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// 1-based line number of the error.
    pub line: usize,
    /// 1-based column number of the error.
    pub column: usize,
}

impl XmlError {
    /// Create a new error at the given byte offset; line/column are filled
    /// in by the parser which knows the original input.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        XmlError {
            message: message.into(),
            offset,
            line: 0,
            column: 0,
        }
    }

    /// Attach line/column information computed from the original input.
    pub fn with_position(mut self, input: &str) -> Self {
        let prefix = &input.as_bytes()[..self.offset.min(input.len())];
        self.line = 1 + prefix.iter().filter(|&&b| b == b'\n').count();
        self.column = 1 + prefix.iter().rev().take_while(|&&b| b != b'\n').count();
        self
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "XML parse error at line {}, column {} (offset {}): {}",
                self.line, self.column, self.offset, self.message
            )
        } else {
            write!(
                f,
                "XML parse error at offset {}: {}",
                self.offset, self.message
            )
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_is_computed_from_offset() {
        let input = "<a>\n<b>\nxxx";
        let err = XmlError::new("boom", 8).with_position(input);
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn display_without_position() {
        let err = XmlError::new("unexpected end", 5);
        assert!(err.to_string().contains("offset 5"));
    }

    #[test]
    fn offset_past_end_is_clamped() {
        let err = XmlError::new("eof", 100).with_position("ab");
        assert_eq!(err.line, 1);
    }
}
