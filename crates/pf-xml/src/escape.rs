//! Escaping and unescaping of XML character data and attribute values.

use crate::error::{XmlError, XmlResult};

/// Escape a string for use as XML character data (element content).
///
/// `<`, `>` and `&` are replaced by their predefined entities.  Quotes are
/// left untouched, which is valid in content position.
pub fn escape_text(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape a string for use inside a double-quoted attribute value.
pub fn escape_attribute(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Resolve the five predefined entities and numeric character references in
/// `raw`.  `offset` is the byte offset of `raw` within the overall input and
/// is only used for error reporting.
pub fn unescape(raw: &str, offset: usize) -> XmlResult<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the longest run without '&' in one go.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&raw[start..i]);
            continue;
        }
        let end = raw[i..]
            .find(';')
            .map(|p| i + p)
            .ok_or_else(|| XmlError::new("unterminated entity reference", offset + i))?;
        let entity = &raw[i + 1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    XmlError::new(
                        format!("invalid character reference &{entity};"),
                        offset + i,
                    )
                })?;
                out.push(char_from_code(code, offset + i)?);
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(
                        format!("invalid character reference &{entity};"),
                        offset + i,
                    )
                })?;
                out.push(char_from_code(code, offset + i)?);
            }
            _ => {
                return Err(XmlError::new(
                    format!("unknown entity &{entity};"),
                    offset + i,
                ))
            }
        }
        i = end + 1;
    }
    Ok(out)
}

fn char_from_code(code: u32, offset: usize) -> XmlResult<char> {
    char::from_u32(code)
        .ok_or_else(|| XmlError::new(format!("invalid Unicode code point {code}"), offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip_text() {
        let original = "a < b && c > d";
        let escaped = escape_text(original);
        assert_eq!(escaped, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&escaped, 0).unwrap(), original);
    }

    #[test]
    fn escape_attribute_quotes() {
        assert_eq!(escape_attribute("say \"hi\""), "say &quot;hi&quot;");
        assert_eq!(escape_attribute("it's"), "it&apos;s");
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;", 0).unwrap(), "AB");
        assert_eq!(unescape("&#x20AC;", 0).unwrap(), "€");
    }

    #[test]
    fn unescape_passthrough_without_ampersand() {
        assert_eq!(unescape("plain text", 0).unwrap(), "plain text");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let err = unescape("&nbsp;", 3).unwrap_err();
        assert!(err.message.contains("unknown entity"));
        assert_eq!(err.offset, 3);
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        assert!(unescape("&amp", 0).is_err());
    }

    #[test]
    fn invalid_code_point_is_an_error() {
        assert!(unescape("&#x110000;", 0).is_err());
        assert!(unescape("&#xD800;", 0).is_err());
    }
}
