//! Serialization helpers.
//!
//! [`Document::node_to_xml`](crate::tree::Document::node_to_xml) does the
//! actual work; the functions here are thin, documented entry points that
//! the engine's result serializer and the examples use.

use crate::tree::{Document, NodeId};

/// Serialize a whole document (without an XML declaration).
pub fn serialize_document(doc: &Document) -> String {
    doc.node_to_xml(doc.root())
}

/// Serialize the subtree rooted at `node`.
pub fn serialize_node(doc: &Document, node: NodeId) -> String {
    doc.node_to_xml(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn serialize_document_equals_root_subtree() {
        let doc = parse("<a><b>x</b></a>").unwrap();
        assert_eq!(serialize_document(&doc), "<a><b>x</b></a>");
        let b = doc.descendants(doc.root_element().unwrap()).next().unwrap();
        assert_eq!(serialize_node(&doc, b), "<b>x</b>");
    }

    #[test]
    fn serialization_escapes_special_characters() {
        let doc = parse("<a attr=\"&quot;q&quot;\">&lt;tag&gt;</a>").unwrap();
        let xml = serialize_document(&doc);
        assert!(xml.contains("&lt;tag&gt;"));
        assert!(xml.contains("&quot;q&quot;"));
    }
}
