//! Arena-based XML document model.
//!
//! Nodes are stored in a flat `Vec` in **document order** (the order in
//! which the parser encountered their start tags), which means the arena
//! index of a node is exactly its *pre-order rank* — the property the
//! XPath Accelerator encoding in `pf-store` relies on.

use crate::escape::{escape_attribute, escape_text};
use std::fmt;

/// Index of a node inside a [`Document`] arena.
///
/// The numeric value equals the node's pre-order rank within the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An attribute of an element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (including any namespace prefix).
    pub name: String,
    /// Attribute value, already entity-decoded.
    pub value: String,
}

/// The kind and payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document root (exactly one per document, always `NodeId(0)`).
    Document,
    /// An element with tag name and attributes.
    Element {
        /// Tag name including any namespace prefix.
        tag: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node (entity-decoded).
    Text(String),
    /// A comment (`<!-- ... -->`).
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

impl NodeKind {
    /// `true` if this node is an element.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// `true` if this node is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }
}

/// Internal node record: kind plus tree links.
#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Depth in the tree; the document node has level 0.
    pub(crate) level: u32,
}

/// An XML document: an arena of nodes in document order.
///
/// The root of the arena (`NodeId(0)`) is always a [`NodeKind::Document`]
/// node; well-formed documents have exactly one element child of the root.
#[derive(Debug, Clone, Default)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
}

impl Document {
    /// Create an empty document containing only the document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
                level: 0,
            }],
        }
    }

    /// The document node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The (first) element child of the document node, if any.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.root())
            .find(|&c| self.kind(c).is_element())
    }

    /// Total number of nodes including the document node.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the document contains only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The kind of `node`.
    #[inline]
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// Tag name of `node` if it is an element.
    pub fn tag(&self, node: NodeId) -> Option<&str> {
        match self.kind(node) {
            NodeKind::Element { tag, .. } => Some(tag.as_str()),
            _ => None,
        }
    }

    /// Attributes of `node` (empty slice for non-elements).
    pub fn attributes(&self, node: NodeId) -> &[Attribute] {
        match self.kind(node) {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Value of attribute `name` on `node`, if present.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.attributes(node)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Parent of `node` (`None` for the document node).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Depth of `node`; the document node has level 0.
    #[inline]
    pub fn level(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].level
    }

    /// Children of `node` in document order.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.index()].children.iter().copied()
    }

    /// Number of children of `node`.
    pub fn child_count(&self, node: NodeId) -> usize {
        self.nodes[node.index()].children.len()
    }

    /// All proper descendants of `node` in document order.
    ///
    /// Because nodes are stored in document order and subtrees are
    /// contiguous, this is a simple index range scan — the same property
    /// the relational encoding exploits.
    pub fn descendants(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let start = node.index() + 1;
        let end = node.index() + 1 + self.subtree_size(node) as usize;
        (start..end).map(|i| NodeId(i as u32))
    }

    /// Number of proper descendants of `node` (the `size(v)` of the paper's
    /// `pre|size|level` encoding).
    pub fn subtree_size(&self, node: NodeId) -> u32 {
        // Descendants occupy the contiguous pre-order range
        // (pre(node), pre(node) + size(node)].  We compute it by walking to
        // the next node that is not a descendant.
        let level = self.level(node);
        let mut end = node.index() + 1;
        while end < self.nodes.len() && self.nodes[end].level > level {
            end += 1;
        }
        (end - node.index() - 1) as u32
    }

    /// Ancestors of `node`, nearest first (excluding `node` itself).
    pub fn ancestors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut current = self.parent(node);
        std::iter::from_fn(move || {
            let next = current?;
            current = self.parent(next);
            Some(next)
        })
    }

    /// Following siblings of `node` in document order.
    pub fn following_siblings(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let siblings: Vec<NodeId> = match self.parent(node) {
            Some(p) => self.nodes[p.index()].children.clone(),
            None => Vec::new(),
        };
        let pos = siblings.iter().position(|&s| s == node);
        let rest = match pos {
            Some(i) => siblings[i + 1..].to_vec(),
            None => Vec::new(),
        };
        rest.into_iter()
    }

    /// Preceding siblings of `node` in *reverse* document order.
    pub fn preceding_siblings(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let siblings: Vec<NodeId> = match self.parent(node) {
            Some(p) => self.nodes[p.index()].children.clone(),
            None => Vec::new(),
        };
        let pos = siblings.iter().position(|&s| s == node).unwrap_or(0);
        let mut before = siblings[..pos].to_vec();
        before.reverse();
        before.into_iter()
    }

    /// The string value of a node per the XQuery data model: the
    /// concatenation of all descendant-or-self text nodes.
    pub fn string_value(&self, node: NodeId) -> String {
        match self.kind(node) {
            NodeKind::Text(t) => t.clone(),
            NodeKind::Comment(c) => c.clone(),
            NodeKind::ProcessingInstruction { data, .. } => data.clone(),
            NodeKind::Document | NodeKind::Element { .. } => {
                let mut out = String::new();
                if let NodeKind::Text(t) = self.kind(node) {
                    out.push_str(t);
                }
                for d in self.descendants(node) {
                    if let NodeKind::Text(t) = self.kind(d) {
                        out.push_str(t);
                    }
                }
                out
            }
        }
    }

    /// Iterate over every node in document order (including the document
    /// node itself).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Serialize the subtree rooted at `node` to XML text.
    pub fn node_to_xml(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.write_node(node, &mut out);
        out
    }

    fn write_node(&self, node: NodeId, out: &mut String) {
        match self.kind(node) {
            NodeKind::Document => {
                for c in self.children(node) {
                    self.write_node(c, out);
                }
            }
            NodeKind::Element { tag, attributes } => {
                out.push('<');
                out.push_str(tag);
                for attr in attributes {
                    out.push(' ');
                    out.push_str(&attr.name);
                    out.push_str("=\"");
                    out.push_str(&escape_attribute(&attr.value));
                    out.push('"');
                }
                if self.child_count(node) == 0 {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in self.children(node) {
                        self.write_node(c, out);
                    }
                    out.push_str("</");
                    out.push_str(tag);
                    out.push('>');
                }
            }
            NodeKind::Text(t) => out.push_str(&escape_text(t)),
            NodeKind::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            NodeKind::ProcessingInstruction { target, data } => {
                out.push_str("<?");
                out.push_str(target);
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
            }
        }
    }
}

/// Incremental builder used by the parser and by node-constructing XQuery
/// expressions (`element {} {}`, `text {}`).
#[derive(Debug)]
pub struct DocumentBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Start building a fresh document.
    pub fn new() -> Self {
        let doc = Document::new();
        DocumentBuilder {
            doc,
            stack: vec![NodeId(0)],
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let parent = *self.stack.last().expect("builder stack never empty");
        let level = self.doc.nodes[parent.index()].level + 1;
        let id = NodeId(self.doc.nodes.len() as u32);
        self.doc.nodes.push(NodeData {
            kind,
            parent: Some(parent),
            children: Vec::new(),
            level,
        });
        self.doc.nodes[parent.index()].children.push(id);
        id
    }

    /// Open a new element; subsequent nodes become its children until
    /// [`end_element`](Self::end_element) is called.
    pub fn start_element(&mut self, tag: impl Into<String>, attributes: Vec<Attribute>) -> NodeId {
        let id = self.push_node(NodeKind::Element {
            tag: tag.into(),
            attributes,
        });
        self.stack.push(id);
        id
    }

    /// Close the most recently opened element.
    pub fn end_element(&mut self) {
        assert!(self.stack.len() > 1, "end_element without matching start");
        self.stack.pop();
    }

    /// Append a text node to the current element.  Adjacent text nodes are
    /// merged, as required by the XQuery data model.
    pub fn text(&mut self, value: impl Into<String>) -> NodeId {
        let value = value.into();
        let parent = *self.stack.last().expect("builder stack never empty");
        if let Some(&last) = self.doc.nodes[parent.index()].children.last() {
            if let NodeKind::Text(existing) = &mut self.doc.nodes[last.index()].kind {
                existing.push_str(&value);
                return last;
            }
        }
        self.push_node(NodeKind::Text(value))
    }

    /// Append a comment node to the current element.
    pub fn comment(&mut self, value: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::Comment(value.into()))
    }

    /// Append a processing-instruction node to the current element.
    pub fn processing_instruction(
        &mut self,
        target: impl Into<String>,
        data: impl Into<String>,
    ) -> NodeId {
        self.push_node(NodeKind::ProcessingInstruction {
            target: target.into(),
            data: data.into(),
        })
    }

    /// Number of still-open elements (0 when only the document is open).
    pub fn open_elements(&self) -> usize {
        self.stack.len() - 1
    }

    /// Finish building and return the document.
    pub fn finish(self) -> Document {
        assert_eq!(
            self.stack.len(),
            1,
            "finish() called with unclosed elements"
        );
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new();
        b.start_element("site", vec![]);
        b.start_element(
            "person",
            vec![Attribute {
                name: "id".into(),
                value: "p1".into(),
            }],
        );
        b.text("Alice");
        b.end_element();
        b.start_element("person", vec![]);
        b.text("Bob");
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn builder_produces_document_order() {
        let doc = sample();
        assert_eq!(doc.len(), 6); // doc, site, person, text, person, text
        let root = doc.root_element().unwrap();
        assert_eq!(doc.tag(root), Some("site"));
        assert_eq!(doc.level(root), 1);
        assert_eq!(doc.subtree_size(root), 4);
    }

    #[test]
    fn attribute_lookup() {
        let doc = sample();
        let root = doc.root_element().unwrap();
        let person = doc.children(root).next().unwrap();
        assert_eq!(doc.attribute(person, "id"), Some("p1"));
        assert_eq!(doc.attribute(person, "missing"), None);
    }

    #[test]
    fn descendants_are_contiguous() {
        let doc = sample();
        let root = doc.root_element().unwrap();
        let descendants: Vec<_> = doc.descendants(root).collect();
        assert_eq!(descendants.len(), 4);
        // Pre-order ranks are consecutive.
        for w in descendants.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
    }

    #[test]
    fn string_value_concatenates_text() {
        let doc = sample();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.string_value(root), "AliceBob");
    }

    #[test]
    fn ancestors_nearest_first() {
        let doc = sample();
        let root = doc.root_element().unwrap();
        let person = doc.children(root).next().unwrap();
        let text = doc.children(person).next().unwrap();
        let ancestors: Vec<_> = doc.ancestors(text).collect();
        assert_eq!(ancestors, vec![person, root, doc.root()]);
    }

    #[test]
    fn sibling_axes() {
        let doc = sample();
        let root = doc.root_element().unwrap();
        let kids: Vec<_> = doc.children(root).collect();
        let following: Vec<_> = doc.following_siblings(kids[0]).collect();
        assert_eq!(following, vec![kids[1]]);
        let preceding: Vec<_> = doc.preceding_siblings(kids[1]).collect();
        assert_eq!(preceding, vec![kids[0]]);
    }

    #[test]
    fn adjacent_text_nodes_merge() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", vec![]);
        b.text("foo");
        b.text("bar");
        b.end_element();
        let doc = b.finish();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.child_count(a), 1);
        assert_eq!(doc.string_value(a), "foobar");
    }

    #[test]
    fn node_to_xml_roundtrip_shape() {
        let doc = sample();
        let xml = doc.node_to_xml(doc.root());
        assert_eq!(
            xml,
            "<site><person id=\"p1\">Alice</person><person>Bob</person></site>"
        );
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert!(doc.root_element().is_none());
        assert_eq!(doc.subtree_size(doc.root()), 0);
    }
}
