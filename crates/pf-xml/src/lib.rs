//! # pf-xml — XML parsing and document model
//!
//! This crate is the lowest substrate of the Pathfinder reproduction: a
//! small, dependency-free, non-validating XML 1.0 parser together with an
//! arena-based document model (DOM) and a serializer.
//!
//! The paper ("Pathfinder: XQuery — The Relational Way", VLDB 2005) shreds
//! XML documents into a relational `pre|size|level` encoding; that shredding
//! lives in [`pf-store`](../pf_store/index.html) and consumes the
//! [`Document`] produced here.  The navigational baseline engine
//! (`pf-baseline`, the X-Hive stand-in) evaluates queries directly over this
//! DOM.
//!
//! ## Supported XML subset
//!
//! * elements, attributes, text, comments, processing instructions, CDATA
//! * the five predefined entities plus decimal/hexadecimal character
//!   references
//! * an optional XML declaration and DOCTYPE line (skipped, not validated)
//! * namespace *prefixes* are preserved as part of the tag name; namespace
//!   resolution is not performed (XMark documents do not need it)
//!
//! ## Example
//!
//! ```
//! use pf_xml::parse;
//!
//! let doc = parse("<site><people><person id=\"p0\"/></people></site>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.tag(root), Some("site"));
//! assert_eq!(doc.descendants(root).count(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod escape;
pub mod parser;
pub mod serialize;
pub mod tree;

pub use error::{XmlError, XmlResult};
pub use parser::{parse, Parser, ParserOptions};
pub use serialize::{serialize_document, serialize_node};
pub use tree::{Attribute, Document, DocumentBuilder, NodeId, NodeKind};
