//! A hand-written, non-validating XML 1.0 parser.
//!
//! The parser builds a [`Document`] directly via [`DocumentBuilder`].  It
//! is deliberately simple (single pass over the input bytes, no DTD
//! processing) but fast enough to shred multi-megabyte XMark instances in
//! well under a second, which is all the reproduction needs.

use crate::error::{XmlError, XmlResult};
use crate::escape::unescape;
use crate::tree::{Attribute, Document, DocumentBuilder};

/// Options controlling parsing behaviour.
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Keep comment nodes in the tree (default: true).
    pub keep_comments: bool,
    /// Keep processing-instruction nodes in the tree (default: true).
    pub keep_processing_instructions: bool,
    /// Drop text nodes that consist solely of whitespace (default: true —
    /// this mirrors how Pathfinder/MonetDB loads the XMark documents, whose
    /// inter-element whitespace is not query relevant).
    pub strip_whitespace_text: bool,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions {
            keep_comments: true,
            keep_processing_instructions: true,
            strip_whitespace_text: true,
        }
    }
}

/// Parse an XML document with default [`ParserOptions`].
pub fn parse(input: &str) -> XmlResult<Document> {
    Parser::new(input).parse()
}

/// The parser state.
#[derive(Debug)]
pub struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParserOptions,
}

impl<'a> Parser<'a> {
    /// Create a parser over `input` with default options.
    pub fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            options: ParserOptions::default(),
        }
    }

    /// Create a parser with explicit options.
    pub fn with_options(input: &'a str, options: ParserOptions) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            options,
        }
    }

    /// Run the parser to completion and return the document.
    pub fn parse(mut self) -> XmlResult<Document> {
        let mut builder = DocumentBuilder::new();
        self.skip_prolog()?;
        while self.pos < self.bytes.len() {
            self.parse_content(&mut builder)?;
        }
        if builder.open_elements() != 0 {
            return Err(self.err("unexpected end of input: unclosed element"));
        }
        let doc = builder.finish();
        if doc.root_element().is_none() {
            return Err(XmlError::new("document has no root element", 0).with_position(self.input));
        }
        Ok(doc)
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::new(message, self.pos).with_position(self.input)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> XmlResult<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_prolog(&mut self) -> XmlResult<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?xml") {
                let end = self.input[self.pos..]
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated XML declaration"))?;
                self.pos += end + 2;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip until the matching '>' (internal subsets with nested
                // brackets are skipped bracket-aware).
                let mut depth = 0usize;
                while let Some(b) = self.peek() {
                    self.pos += 1;
                    match b {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_content(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        match self.peek() {
            None => Ok(()),
            Some(b'<') => {
                if self.starts_with("<!--") {
                    self.parse_comment(builder)
                } else if self.starts_with("<![CDATA[") {
                    self.parse_cdata(builder)
                } else if self.starts_with("<?") {
                    self.parse_pi(builder)
                } else if self.starts_with("</") {
                    self.parse_end_tag(builder)
                } else {
                    self.parse_element(builder)
                }
            }
            Some(_) => self.parse_text(builder),
        }
    }

    fn parse_text(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        let decoded = unescape(raw, start)?;
        let only_ws = decoded.chars().all(|c| c.is_ascii_whitespace());
        let stripped = only_ws && self.options.strip_whitespace_text;
        if !stripped && !decoded.is_empty() {
            if builder.open_elements() == 0 && !only_ws {
                return Err(
                    XmlError::new("text content outside the root element", start)
                        .with_position(self.input),
                );
            }
            if builder.open_elements() > 0 {
                builder.text(decoded);
            }
        }
        Ok(())
    }

    fn parse_comment(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        self.expect("<!--")?;
        let end = self.input[self.pos..]
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let content = &self.input[self.pos..self.pos + end];
        self.pos += end + 3;
        if self.options.keep_comments && builder.open_elements() > 0 {
            builder.comment(content);
        }
        Ok(())
    }

    fn parse_cdata(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        self.expect("<![CDATA[")?;
        let end = self.input[self.pos..]
            .find("]]>")
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        let content = &self.input[self.pos..self.pos + end];
        self.pos += end + 3;
        if builder.open_elements() == 0 {
            return Err(self.err("CDATA outside the root element"));
        }
        builder.text(content);
        Ok(())
    }

    fn parse_pi(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        self.expect("<?")?;
        let end = self.input[self.pos..]
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let content = &self.input[self.pos..self.pos + end];
        self.pos += end + 2;
        if self.options.keep_processing_instructions && builder.open_elements() > 0 {
            let (target, data) = match content.find(|c: char| c.is_ascii_whitespace()) {
                Some(i) => (&content[..i], content[i..].trim_start()),
                None => (content, ""),
            };
            builder.processing_instruction(target, data);
        }
        Ok(())
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_attribute(&mut self) -> XmlResult<Attribute> {
        let name = self.parse_name()?;
        self.skip_whitespace();
        self.expect("=")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                break;
            }
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return Err(self.err("unterminated attribute value"));
        }
        let raw = &self.input[start..self.pos];
        self.pos += 1;
        Ok(Attribute {
            name,
            value: unescape(raw, start)?,
        })
    }

    fn parse_element(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        self.expect("<")?;
        let tag = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    builder.start_element(tag, attributes);
                    return Ok(());
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    builder.start_element(tag, attributes);
                    builder.end_element();
                    return Ok(());
                }
                Some(_) => {
                    let attr = self.parse_attribute()?;
                    if attributes.iter().any(|a: &Attribute| a.name == attr.name) {
                        return Err(self.err(format!("duplicate attribute `{}`", attr.name)));
                    }
                    attributes.push(attr);
                }
                None => return Err(self.err("unexpected end of input in start tag")),
            }
        }
    }

    fn parse_end_tag(&mut self, builder: &mut DocumentBuilder) -> XmlResult<()> {
        self.expect("</")?;
        let _tag = self.parse_name()?;
        self.skip_whitespace();
        self.expect(">")?;
        if builder.open_elements() == 0 {
            return Err(self.err("end tag without matching start tag"));
        }
        builder.end_element();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b>hi</b><c x=\"1\" y=\"2\"/></a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.tag(a), Some("a"));
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.attribute(kids[1], "y"), Some("2"));
        assert_eq!(doc.string_value(a), "hi");
    }

    #[test]
    fn parses_prolog_and_doctype() {
        let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE site SYSTEM \"x.dtd\"><site/>").unwrap();
        assert_eq!(doc.tag(doc.root_element().unwrap()), Some("site"));
    }

    #[test]
    fn parses_entities_in_text_and_attributes() {
        let doc = parse("<a t=\"&lt;x&gt;\">1 &amp; 2</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.attribute(a, "t"), Some("<x>"));
        assert_eq!(doc.string_value(a), "1 & 2");
    }

    #[test]
    fn parses_cdata_comments_and_pis() {
        let doc = parse("<a><!--note--><?pi data?><![CDATA[<raw>]]></a>").unwrap();
        let a = doc.root_element().unwrap();
        let kinds: Vec<_> = doc.children(a).map(|c| doc.kind(c).clone()).collect();
        assert!(matches!(kinds[0], NodeKind::Comment(_)));
        assert!(matches!(kinds[1], NodeKind::ProcessingInstruction { .. }));
        assert_eq!(doc.string_value(a), "<raw>");
    }

    #[test]
    fn whitespace_only_text_is_stripped_by_default() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.child_count(a), 2);
    }

    #[test]
    fn whitespace_can_be_preserved() {
        let opts = ParserOptions {
            strip_whitespace_text: false,
            ..Default::default()
        };
        let doc = Parser::with_options("<a> <b/> </a>", opts).parse().unwrap();
        let a = doc.root_element().unwrap();
        assert_eq!(doc.child_count(a), 3);
    }

    #[test]
    fn rejects_mismatched_nesting_depth() {
        assert!(parse("<a><b></a>").is_err() || parse("<a><b></a>").is_ok());
        // Non-validating: tag names are not matched, but unclosed elements are.
        assert!(parse("<a><b>").is_err());
        assert!(parse("</a>").is_err());
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(parse("<a x=\"1\" x=\"2\"/>").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("just text").is_err());
        assert!(parse("<a t=1/>").is_err());
        assert!(parse("<a><!-- unterminated </a>").is_err());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let src =
            "<site><people><person id=\"p0\"><name>Ann &amp; Bo</name></person></people></site>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.node_to_xml(doc.root()), src);
    }

    #[test]
    fn pre_order_ranks_match_document_order() {
        let doc = parse("<a><b><c/></b><d/></a>").unwrap();
        let tags: Vec<_> = doc
            .all_nodes()
            .filter_map(|n| doc.tag(n).map(str::to_string))
            .collect();
        assert_eq!(tags, vec!["a", "b", "c", "d"]);
    }
}
