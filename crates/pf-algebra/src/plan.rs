//! Plan DAGs and the plan builder.

use crate::ops::AlgOp;

/// Identifier of an operator within a [`Plan`] (index into the node arena).
pub type OpId = usize;

/// A query plan: a DAG of [`AlgOp`]s with a designated root.
///
/// Nodes are stored in an arena; children reference other nodes by [`OpId`].
/// The same node may be referenced by several parents (common subexpression
/// sharing), which is essential to keep the loop-lifted plans manageable —
/// the paper reports ~120 operators for XMark Q8 *with* sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    ops: Vec<AlgOp>,
    root: OpId,
}

impl Plan {
    /// Build a plan from an arena and a root id.
    pub fn new(ops: Vec<AlgOp>, root: OpId) -> Self {
        assert!(root < ops.len(), "root id out of bounds");
        Plan { ops, root }
    }

    /// The root operator id.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// The operator with id `id`.
    pub fn op(&self, id: OpId) -> &AlgOp {
        &self.ops[id]
    }

    /// All operators (including ones no longer reachable from the root).
    pub fn ops(&self) -> &[AlgOp] {
        &self.ops
    }

    /// Mutable access used by the optimizer.
    pub(crate) fn ops_mut(&mut self) -> &mut Vec<AlgOp> {
        &mut self.ops
    }

    /// Change the root.
    pub(crate) fn set_root(&mut self, root: OpId) {
        assert!(root < self.ops.len());
        self.root = root;
    }

    /// Ids of all operators reachable from the root, in a topological order
    /// (children before parents).
    pub fn reachable(&self) -> Vec<OpId> {
        let mut visited = vec![false; self.ops.len()];
        let mut order = Vec::new();
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
                continue;
            }
            if visited[id] {
                continue;
            }
            visited[id] = true;
            stack.push((id, true));
            for child in self.ops[id].children() {
                if !visited[child] {
                    stack.push((child, false));
                }
            }
        }
        order
    }

    /// Number of operators reachable from the root — the "plan size" metric
    /// used for the Q8 plan-size experiment (E5).
    pub fn operator_count(&self) -> usize {
        self.reachable().len()
    }

    /// How many times each operator's result is consumed.
    ///
    /// Indexed by [`OpId`]; counts parent *edges* among reachable operators
    /// (an operator referenced twice by the same parent, e.g. a self-cross,
    /// counts twice).  The root gets one extra consumer — the final result
    /// hand-off — so its count never drops to zero during execution.
    /// Unreachable operators have count 0.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.ops.len()];
        for id in self.reachable() {
            for child in self.ops[id].children() {
                counts[child] += 1;
            }
        }
        counts[self.root] += 1;
        counts
    }

    /// The evaluation schedule with last-use annotations.
    ///
    /// Returns the reachable operators in topological order (children before
    /// parents); each entry pairs the operator to evaluate with the set of
    /// operator results that become *dead* once that step has run — i.e.
    /// results whose last consumer is this step.  An executor that frees the
    /// dead set after every step keeps only the live frontier of the DAG
    /// resident instead of every intermediate of the plan.  The root is
    /// never listed as dead (its result is the query answer).
    pub fn last_use_schedule(&self) -> Vec<(OpId, Vec<OpId>)> {
        let mut remaining = self.consumer_counts();
        self.reachable()
            .into_iter()
            .map(|id| {
                let mut dead = Vec::new();
                for child in self.ops[id].children() {
                    remaining[child] -= 1;
                    if remaining[child] == 0 {
                        dead.push(child);
                    }
                }
                (id, dead)
            })
            .collect()
    }

    /// Count reachable operators per symbol family (for plan statistics).
    pub fn operator_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<String, usize> = BTreeMap::new();
        for id in self.reachable() {
            let name = match self.op(id) {
                AlgOp::Lit { .. } => "table",
                AlgOp::Doc { .. } => "doc",
                AlgOp::Project { .. } => "project",
                AlgOp::Select { .. } | AlgOp::SelectEq { .. } => "select",
                AlgOp::Distinct { .. } => "distinct",
                AlgOp::Union { .. } => "union",
                AlgOp::Difference { .. } => "difference",
                AlgOp::EquiJoin { .. } => "equi-join",
                AlgOp::ThetaJoin { .. } => "theta-join",
                AlgOp::Cross { .. } => "cross",
                AlgOp::RowNum { .. } => "rownum",
                AlgOp::BinaryMap { .. } | AlgOp::UnaryMap { .. } => "map",
                AlgOp::Attach { .. } => "attach",
                AlgOp::Aggregate { .. } => "aggregate",
                AlgOp::Step { .. } => "step",
                AlgOp::DocOrder { .. } => "ddo",
                AlgOp::FnData { .. } => "data",
                AlgOp::FnRoot { .. } => "root",
                AlgOp::Ebv { .. } => "ebv",
                AlgOp::ElemConstruct { .. }
                | AlgOp::AttrConstruct { .. }
                | AlgOp::TextConstruct { .. } => "construct",
                AlgOp::Sort { .. } => "sort",
            };
            *hist.entry(name.to_string()).or_default() += 1;
        }
        hist.into_iter().collect()
    }
}

/// Incremental plan builder used by the compiler.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    ops: Vec<AlgOp>,
}

impl PlanBuilder {
    /// Start with an empty arena.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    /// Append an operator and return its id.
    pub fn add(&mut self, op: AlgOp) -> OpId {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Number of operators added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operators were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peek at an operator.
    pub fn op(&self, id: OpId) -> &AlgOp {
        &self.ops[id]
    }

    /// Finish building, designating `root` as the plan root.
    pub fn finish(self, root: OpId) -> Plan {
        Plan::new(self.ops, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_relational::Value;

    fn small_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(10)]],
        });
        let p1 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        let p2 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter1".into()),
                ("item".into(), "item1".into()),
            ],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: p1,
            right: p2,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        b.finish(join)
    }

    #[test]
    fn reachable_is_topological() {
        let plan = small_plan();
        let order = plan.reachable();
        assert_eq!(order.len(), 4);
        // children appear before parents
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        assert_eq!(*order.last().unwrap(), plan.root());
    }

    #[test]
    fn operator_count_ignores_unreachable_nodes() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let _orphan = b.add(AlgOp::Distinct { input: lit });
        let keep = b.add(AlgOp::Distinct { input: lit });
        let plan = b.finish(keep);
        assert_eq!(plan.ops().len(), 3);
        assert_eq!(plan.operator_count(), 2);
    }

    #[test]
    fn histogram_counts_shared_nodes_once() {
        let plan = small_plan();
        let hist = plan.operator_histogram();
        let get = |name: &str| {
            hist.iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("table"), 1);
        assert_eq!(get("project"), 2);
        assert_eq!(get("equi-join"), 1);
    }

    #[test]
    #[should_panic(expected = "root id out of bounds")]
    fn invalid_root_panics() {
        Plan::new(vec![], 0);
    }

    #[test]
    fn consumer_counts_count_edges_and_protect_the_root() {
        let plan = small_plan();
        let counts = plan.consumer_counts();
        // The literal feeds both projections; each projection feeds the
        // join; the join (root) gets the synthetic final consumer.
        assert_eq!(counts, vec![2, 1, 1, 1]);

        // A self-cross references its child twice.
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let cross = b.add(AlgOp::Cross {
            left: lit,
            right: lit,
        });
        let plan = b.finish(cross);
        assert_eq!(plan.consumer_counts(), vec![2, 1]);
    }

    #[test]
    fn consumer_counts_ignore_unreachable_operators() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let orphan = b.add(AlgOp::Distinct { input: lit });
        let keep = b.add(AlgOp::Distinct { input: lit });
        let plan = b.finish(keep);
        assert_eq!(plan.consumer_counts()[orphan], 0);
        // Only the reachable consumer of the literal is counted.
        assert_eq!(plan.consumer_counts()[lit], 1);
    }

    #[test]
    fn last_use_schedule_frees_results_at_their_last_consumer() {
        let plan = small_plan();
        let schedule = plan.last_use_schedule();
        // Same order as `reachable`, with last-use annotations.
        let order: Vec<OpId> = schedule.iter().map(|(id, _)| *id).collect();
        assert_eq!(order, plan.reachable());
        let dead_at = |id: OpId| -> Vec<OpId> {
            schedule
                .iter()
                .find(|(step, _)| *step == id)
                .map(|(_, dead)| dead.clone())
                .unwrap()
        };
        // The literal (op 0) dies once the *second* projection has run; the
        // two projections die at the join; the root never dies.
        let second_projection = order[order.iter().position(|&i| i == 3).unwrap() - 1];
        assert!(dead_at(second_projection).contains(&0));
        let mut at_join = dead_at(3);
        at_join.sort_unstable();
        assert_eq!(at_join, vec![1, 2]);
        assert!(!schedule.iter().any(|(_, dead)| dead.contains(&plan.root())));
    }
}
