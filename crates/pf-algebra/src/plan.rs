//! Plan DAGs and the plan builder.

use crate::ops::AlgOp;

/// Identifier of an operator within a [`Plan`] (index into the node arena).
pub type OpId = usize;

/// A query plan: a DAG of [`AlgOp`]s with a designated root.
///
/// Nodes are stored in an arena; children reference other nodes by [`OpId`].
/// The same node may be referenced by several parents (common subexpression
/// sharing), which is essential to keep the loop-lifted plans manageable —
/// the paper reports ~120 operators for XMark Q8 *with* sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    ops: Vec<AlgOp>,
    root: OpId,
}

impl Plan {
    /// Build a plan from an arena and a root id.
    pub fn new(ops: Vec<AlgOp>, root: OpId) -> Self {
        assert!(root < ops.len(), "root id out of bounds");
        Plan { ops, root }
    }

    /// The root operator id.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// The operator with id `id`.
    pub fn op(&self, id: OpId) -> &AlgOp {
        &self.ops[id]
    }

    /// All operators (including ones no longer reachable from the root).
    pub fn ops(&self) -> &[AlgOp] {
        &self.ops
    }

    /// Mutable access used by the optimizer.
    pub(crate) fn ops_mut(&mut self) -> &mut Vec<AlgOp> {
        &mut self.ops
    }

    /// Change the root.
    pub(crate) fn set_root(&mut self, root: OpId) {
        assert!(root < self.ops.len());
        self.root = root;
    }

    /// Ids of all operators reachable from the root, in a topological order
    /// (children before parents).
    pub fn reachable(&self) -> Vec<OpId> {
        let mut visited = vec![false; self.ops.len()];
        let mut order = Vec::new();
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
                continue;
            }
            if visited[id] {
                continue;
            }
            visited[id] = true;
            stack.push((id, true));
            for child in self.ops[id].children() {
                if !visited[child] {
                    stack.push((child, false));
                }
            }
        }
        order
    }

    /// Number of operators reachable from the root — the "plan size" metric
    /// used for the Q8 plan-size experiment (E5).
    pub fn operator_count(&self) -> usize {
        self.reachable().len()
    }

    /// How many times each operator's result is consumed.
    ///
    /// Indexed by [`OpId`]; counts parent *edges* among reachable operators
    /// (an operator referenced twice by the same parent, e.g. a self-cross,
    /// counts twice).  The root gets one extra consumer — the final result
    /// hand-off — so its count never drops to zero during execution.
    /// Unreachable operators have count 0.
    pub fn consumer_counts(&self) -> Vec<usize> {
        self.ready_set_books().consumer_counts
    }

    /// The evaluation schedule with last-use annotations.
    ///
    /// Returns the reachable operators in topological order (children before
    /// parents); each entry pairs the operator to evaluate with the set of
    /// operator results that become *dead* once that step has run — i.e.
    /// results whose last consumer is this step.  An executor that frees the
    /// dead set after every step keeps only the live frontier of the DAG
    /// resident instead of every intermediate of the plan.  The root is
    /// never listed as dead (its result is the query answer).
    ///
    /// This is an *analysis* view of the logical plan (plan inspection,
    /// tests, future spill budgeting).  The engine's executor no longer
    /// walks it directly: it schedules physical nodes and evicts via the
    /// node-granular consumer counts of
    /// [`crate::PhysicalPlan::books`], which collapse onto this schedule
    /// when every operator is its own node (fusion off).
    pub fn last_use_schedule(&self) -> Vec<(OpId, Vec<OpId>)> {
        let mut remaining = self.consumer_counts();
        self.reachable()
            .into_iter()
            .map(|id| {
                let mut dead = Vec::new();
                for child in self.ops[id].children() {
                    remaining[child] -= 1;
                    if remaining[child] == 0 {
                        dead.push(child);
                    }
                }
                (id, dead)
            })
            .collect()
    }

    /// All the bookkeeping a ready-set scheduler needs, derived in **one
    /// pass** over the reachable operators (this is what the parallel
    /// executor calls once per query; the fine-grained accessors below
    /// delegate here).
    pub fn ready_set_books(&self) -> ReadySetBooks {
        let topo_order = self.reachable();
        let n = self.ops.len();
        let mut input_edges = vec![0usize; n];
        let mut consumers: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut consumer_counts = vec![0usize; n];
        let mut levels: Vec<Option<usize>> = vec![None; n];
        let mut level_widths: Vec<usize> = Vec::new();
        for &id in &topo_order {
            let children = self.ops[id].children();
            input_edges[id] = children.len();
            let mut depth = 0usize;
            for &child in &children {
                consumers[child].push(id);
                consumer_counts[child] += 1;
                // `reachable` is topological (children before parents), so
                // every child level is already computed.
                depth = depth.max(levels[child].expect("topological order") + 1);
            }
            levels[id] = Some(depth);
            if depth >= level_widths.len() {
                level_widths.resize(depth + 1, 0);
            }
            level_widths[depth] += 1;
        }
        consumer_counts[self.root] += 1;
        ReadySetBooks {
            topo_order,
            input_edges,
            consumers,
            consumer_counts,
            levels,
            level_widths,
        }
    }

    /// Unmet-input edge counts, indexed by [`OpId`].
    ///
    /// For every reachable operator this is the number of child *edges* it
    /// has (an operator referencing the same child twice, e.g. a
    /// self-cross, counts two).  Unreachable operators have count 0.  A
    /// ready-set scheduler seeds its ready queue with the reachable
    /// operators whose count is 0 (leaves) and decrements a parent's count
    /// once per edge as each child result is published; the parent becomes
    /// ready when its count reaches 0.
    pub fn input_edge_counts(&self) -> Vec<usize> {
        self.ready_set_books().input_edges
    }

    /// The consumer edges of every operator, indexed by [`OpId`]: which
    /// reachable operators read this operator's result.
    ///
    /// This is the inverse adjacency of the DAG, restricted to operators
    /// reachable from the root.  A parent referencing the same child twice
    /// appears twice in that child's list, mirroring the per-edge counting
    /// of [`Plan::consumer_counts`] and [`Plan::input_edge_counts`]: a
    /// scheduler that walks a published result's consumer list and
    /// decrements each consumer's unmet-input count once per entry keeps
    /// the two books consistent.
    pub fn consumers(&self) -> Vec<Vec<OpId>> {
        self.ready_set_books().consumers
    }

    /// The dependency level of every operator: leaves are level 0, every
    /// other operator is one more than its deepest input.
    ///
    /// Indexed by [`OpId`]; unreachable operators get `None`.  All
    /// operators of one level are mutually independent (no data flows
    /// between them), so the maximum level is the length of the critical
    /// path — the lower bound on parallel execution steps — and the widest
    /// level bounds the useful worker count.
    pub fn dependency_levels(&self) -> Vec<Option<usize>> {
        self.ready_set_books().levels
    }

    /// Length of the critical path: the number of dependency levels.
    ///
    /// A plan whose operator count greatly exceeds this value has wide
    /// levels — i.e. branches a parallel executor can evaluate
    /// concurrently.
    pub fn critical_path_len(&self) -> usize {
        self.ready_set_books().level_widths.len()
    }

    /// Count reachable operators per symbol family (for plan statistics).
    pub fn operator_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<String, usize> = BTreeMap::new();
        for id in self.reachable() {
            let name = match self.op(id) {
                AlgOp::Lit { .. } => "table",
                AlgOp::Doc { .. } => "doc",
                AlgOp::Project { .. } => "project",
                AlgOp::Select { .. } | AlgOp::SelectEq { .. } => "select",
                AlgOp::Distinct { .. } => "distinct",
                AlgOp::Union { .. } => "union",
                AlgOp::Difference { .. } => "difference",
                AlgOp::EquiJoin { .. } => "equi-join",
                AlgOp::ThetaJoin { .. } => "theta-join",
                AlgOp::Cross { .. } => "cross",
                AlgOp::RowNum { .. } => "rownum",
                AlgOp::BinaryMap { .. } | AlgOp::UnaryMap { .. } => "map",
                AlgOp::Attach { .. } => "attach",
                AlgOp::Aggregate { .. } => "aggregate",
                AlgOp::Step { .. } => "step",
                AlgOp::IndexScan { .. } => "index-scan",
                AlgOp::DocOrder { .. } => "ddo",
                AlgOp::FnData { .. } => "data",
                AlgOp::FnRoot { .. } => "root",
                AlgOp::Ebv { .. } => "ebv",
                AlgOp::ElemConstruct { .. }
                | AlgOp::AttrConstruct { .. }
                | AlgOp::TextConstruct { .. } => "construct",
                AlgOp::Sort { .. } => "sort",
            };
            *hist.entry(name.to_string()).or_default() += 1;
        }
        hist.into_iter().collect()
    }
}

/// The complete bookkeeping of a ready-set scheduler over one [`Plan`],
/// produced by [`Plan::ready_set_books`] in a single topological pass.
///
/// All per-operator vectors are indexed by [`OpId`]; entries of
/// unreachable operators are zero / empty / `None`.  Duplicate edges (a
/// parent referencing the same child twice) are counted per edge
/// throughout, so decrementing `input_edges` once per `consumers` entry
/// keeps the books consistent.
#[derive(Debug, Clone)]
pub struct ReadySetBooks {
    /// Reachable operators in topological order (children before parents).
    pub topo_order: Vec<OpId>,
    /// Unmet input edges per operator (ready when 0) —
    /// [`Plan::input_edge_counts`].
    pub input_edges: Vec<usize>,
    /// Consumer edges per operator (inverse adjacency) —
    /// [`Plan::consumers`].
    pub consumers: Vec<Vec<OpId>>,
    /// Remaining consumer edges per operator, including the synthetic
    /// final consumer of the root — [`Plan::consumer_counts`].
    pub consumer_counts: Vec<usize>,
    /// Dependency level per operator (leaves are 0) —
    /// [`Plan::dependency_levels`].
    pub levels: Vec<Option<usize>>,
    /// Number of operators per dependency level; its length is the
    /// critical path, its maximum the width a worker pool can exploit.
    pub level_widths: Vec<usize>,
}

impl ReadySetBooks {
    /// The widest dependency level: an upper bound (up to antichain
    /// effects) on how many operators can usefully evaluate concurrently.
    pub fn width(&self) -> usize {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }
}

/// Incremental plan builder used by the compiler.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    ops: Vec<AlgOp>,
}

impl PlanBuilder {
    /// Start with an empty arena.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    /// Append an operator and return its id.
    pub fn add(&mut self, op: AlgOp) -> OpId {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Number of operators added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operators were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peek at an operator.
    pub fn op(&self, id: OpId) -> &AlgOp {
        &self.ops[id]
    }

    /// Finish building, designating `root` as the plan root.
    pub fn finish(self, root: OpId) -> Plan {
        Plan::new(self.ops, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_relational::Value;

    fn small_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(10)]],
        });
        let p1 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        let p2 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter1".into()),
                ("item".into(), "item1".into()),
            ],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: p1,
            right: p2,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        b.finish(join)
    }

    #[test]
    fn reachable_is_topological() {
        let plan = small_plan();
        let order = plan.reachable();
        assert_eq!(order.len(), 4);
        // children appear before parents
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        assert_eq!(*order.last().unwrap(), plan.root());
    }

    #[test]
    fn operator_count_ignores_unreachable_nodes() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let _orphan = b.add(AlgOp::Distinct { input: lit });
        let keep = b.add(AlgOp::Distinct { input: lit });
        let plan = b.finish(keep);
        assert_eq!(plan.ops().len(), 3);
        assert_eq!(plan.operator_count(), 2);
    }

    #[test]
    fn histogram_counts_shared_nodes_once() {
        let plan = small_plan();
        let hist = plan.operator_histogram();
        let get = |name: &str| {
            hist.iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("table"), 1);
        assert_eq!(get("project"), 2);
        assert_eq!(get("equi-join"), 1);
    }

    #[test]
    #[should_panic(expected = "root id out of bounds")]
    fn invalid_root_panics() {
        Plan::new(vec![], 0);
    }

    #[test]
    fn consumer_counts_count_edges_and_protect_the_root() {
        let plan = small_plan();
        let counts = plan.consumer_counts();
        // The literal feeds both projections; each projection feeds the
        // join; the join (root) gets the synthetic final consumer.
        assert_eq!(counts, vec![2, 1, 1, 1]);

        // A self-cross references its child twice.
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let cross = b.add(AlgOp::Cross {
            left: lit,
            right: lit,
        });
        let plan = b.finish(cross);
        assert_eq!(plan.consumer_counts(), vec![2, 1]);
    }

    #[test]
    fn consumer_counts_ignore_unreachable_operators() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let orphan = b.add(AlgOp::Distinct { input: lit });
        let keep = b.add(AlgOp::Distinct { input: lit });
        let plan = b.finish(keep);
        assert_eq!(plan.consumer_counts()[orphan], 0);
        // Only the reachable consumer of the literal is counted.
        assert_eq!(plan.consumer_counts()[lit], 1);
    }

    #[test]
    fn input_edge_counts_count_edges_and_skip_unreachable() {
        let plan = small_plan();
        // literal: leaf; projections: one input each; join: two inputs.
        assert_eq!(plan.input_edge_counts(), vec![0, 1, 1, 2]);

        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let orphan = b.add(AlgOp::Distinct { input: lit });
        let cross = b.add(AlgOp::Cross {
            left: lit,
            right: lit,
        });
        let plan = b.finish(cross);
        let counts = plan.input_edge_counts();
        assert_eq!(counts[orphan], 0, "unreachable operators have no edges");
        assert_eq!(counts[cross], 2, "a self-cross has two input edges");
    }

    #[test]
    fn consumers_is_the_inverse_adjacency() {
        let plan = small_plan();
        let consumers = plan.consumers();
        let mut of_lit = consumers[0].clone();
        of_lit.sort_unstable();
        assert_eq!(of_lit, vec![1, 2]);
        assert_eq!(consumers[1], vec![3]);
        assert_eq!(consumers[2], vec![3]);
        assert!(consumers[3].is_empty(), "the root has no consumers");
        // Consumer list lengths agree with consumer_counts (minus the
        // synthetic root consumer).
        let counts = plan.consumer_counts();
        for (id, list) in consumers.iter().enumerate() {
            let expected = if id == plan.root() {
                counts[id] - 1
            } else {
                counts[id]
            };
            assert_eq!(list.len(), expected);
        }
    }

    #[test]
    fn consumers_repeat_duplicate_edges() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let cross = b.add(AlgOp::Cross {
            left: lit,
            right: lit,
        });
        let plan = b.finish(cross);
        assert_eq!(plan.consumers()[lit], vec![cross, cross]);
    }

    #[test]
    fn dependency_levels_follow_the_longest_input_path() {
        let plan = small_plan();
        let levels = plan.dependency_levels();
        assert_eq!(levels, vec![Some(0), Some(1), Some(1), Some(2)]);
        assert_eq!(plan.critical_path_len(), 3);

        // The two projections sit on the same level: they are independent
        // and may evaluate concurrently.
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let _orphan = b.add(AlgOp::Distinct { input: lit });
        let plan = b.finish(lit);
        assert_eq!(plan.dependency_levels(), vec![Some(0), None]);
        assert_eq!(plan.critical_path_len(), 1);
    }

    #[test]
    fn ready_set_books_agree_with_the_individual_accessors() {
        let plan = small_plan();
        let books = plan.ready_set_books();
        assert_eq!(books.topo_order, plan.reachable());
        assert_eq!(books.input_edges, plan.input_edge_counts());
        assert_eq!(books.consumers, plan.consumers());
        assert_eq!(books.consumer_counts, plan.consumer_counts());
        assert_eq!(books.levels, plan.dependency_levels());
        assert_eq!(books.level_widths.len(), plan.critical_path_len());
        // Two operators (the projections) share level 1 → width 2.
        assert_eq!(books.level_widths, vec![1, 2, 1]);
        assert_eq!(books.width(), 2);
    }

    #[test]
    fn last_use_schedule_frees_results_at_their_last_consumer() {
        let plan = small_plan();
        let schedule = plan.last_use_schedule();
        // Same order as `reachable`, with last-use annotations.
        let order: Vec<OpId> = schedule.iter().map(|(id, _)| *id).collect();
        assert_eq!(order, plan.reachable());
        let dead_at = |id: OpId| -> Vec<OpId> {
            schedule
                .iter()
                .find(|(step, _)| *step == id)
                .map(|(_, dead)| dead.clone())
                .unwrap()
        };
        // The literal (op 0) dies once the *second* projection has run; the
        // two projections die at the join; the root never dies.
        let second_projection = order[order.iter().position(|&i| i == 3).unwrap() - 1];
        assert!(dead_at(second_projection).contains(&0));
        let mut at_join = dead_at(3);
        at_join.sort_unstable();
        assert_eq!(at_join, vec![1, 2]);
        assert!(!schedule.iter().any(|(_, dead)| dead.contains(&plan.root())));
    }
}
