//! Plan DAGs and the plan builder.

use crate::ops::AlgOp;

/// Identifier of an operator within a [`Plan`] (index into the node arena).
pub type OpId = usize;

/// A query plan: a DAG of [`AlgOp`]s with a designated root.
///
/// Nodes are stored in an arena; children reference other nodes by [`OpId`].
/// The same node may be referenced by several parents (common subexpression
/// sharing), which is essential to keep the loop-lifted plans manageable —
/// the paper reports ~120 operators for XMark Q8 *with* sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    ops: Vec<AlgOp>,
    root: OpId,
}

impl Plan {
    /// Build a plan from an arena and a root id.
    pub fn new(ops: Vec<AlgOp>, root: OpId) -> Self {
        assert!(root < ops.len(), "root id out of bounds");
        Plan { ops, root }
    }

    /// The root operator id.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// The operator with id `id`.
    pub fn op(&self, id: OpId) -> &AlgOp {
        &self.ops[id]
    }

    /// All operators (including ones no longer reachable from the root).
    pub fn ops(&self) -> &[AlgOp] {
        &self.ops
    }

    /// Mutable access used by the optimizer.
    pub(crate) fn ops_mut(&mut self) -> &mut Vec<AlgOp> {
        &mut self.ops
    }

    /// Change the root.
    pub(crate) fn set_root(&mut self, root: OpId) {
        assert!(root < self.ops.len());
        self.root = root;
    }

    /// Ids of all operators reachable from the root, in a topological order
    /// (children before parents).
    pub fn reachable(&self) -> Vec<OpId> {
        let mut visited = vec![false; self.ops.len()];
        let mut order = Vec::new();
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
                continue;
            }
            if visited[id] {
                continue;
            }
            visited[id] = true;
            stack.push((id, true));
            for child in self.ops[id].children() {
                if !visited[child] {
                    stack.push((child, false));
                }
            }
        }
        order
    }

    /// Number of operators reachable from the root — the "plan size" metric
    /// used for the Q8 plan-size experiment (E5).
    pub fn operator_count(&self) -> usize {
        self.reachable().len()
    }

    /// Count reachable operators per symbol family (for plan statistics).
    pub fn operator_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<String, usize> = BTreeMap::new();
        for id in self.reachable() {
            let name = match self.op(id) {
                AlgOp::Lit { .. } => "table",
                AlgOp::Doc { .. } => "doc",
                AlgOp::Project { .. } => "project",
                AlgOp::Select { .. } | AlgOp::SelectEq { .. } => "select",
                AlgOp::Distinct { .. } => "distinct",
                AlgOp::Union { .. } => "union",
                AlgOp::Difference { .. } => "difference",
                AlgOp::EquiJoin { .. } => "equi-join",
                AlgOp::ThetaJoin { .. } => "theta-join",
                AlgOp::Cross { .. } => "cross",
                AlgOp::RowNum { .. } => "rownum",
                AlgOp::BinaryMap { .. } | AlgOp::UnaryMap { .. } => "map",
                AlgOp::Attach { .. } => "attach",
                AlgOp::Aggregate { .. } => "aggregate",
                AlgOp::Step { .. } => "step",
                AlgOp::DocOrder { .. } => "ddo",
                AlgOp::FnData { .. } => "data",
                AlgOp::FnRoot { .. } => "root",
                AlgOp::Ebv { .. } => "ebv",
                AlgOp::ElemConstruct { .. }
                | AlgOp::AttrConstruct { .. }
                | AlgOp::TextConstruct { .. } => "construct",
                AlgOp::Sort { .. } => "sort",
            };
            *hist.entry(name.to_string()).or_default() += 1;
        }
        hist.into_iter().collect()
    }
}

/// Incremental plan builder used by the compiler.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    ops: Vec<AlgOp>,
}

impl PlanBuilder {
    /// Start with an empty arena.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    /// Append an operator and return its id.
    pub fn add(&mut self, op: AlgOp) -> OpId {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Number of operators added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operators were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peek at an operator.
    pub fn op(&self, id: OpId) -> &AlgOp {
        &self.ops[id]
    }

    /// Finish building, designating `root` as the plan root.
    pub fn finish(self, root: OpId) -> Plan {
        Plan::new(self.ops, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_relational::Value;

    fn small_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(10)]],
        });
        let p1 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        let p2 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter1".into()),
                ("item".into(), "item1".into()),
            ],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: p1,
            right: p2,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        b.finish(join)
    }

    #[test]
    fn reachable_is_topological() {
        let plan = small_plan();
        let order = plan.reachable();
        assert_eq!(order.len(), 4);
        // children appear before parents
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        assert_eq!(*order.last().unwrap(), plan.root());
    }

    #[test]
    fn operator_count_ignores_unreachable_nodes() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let _orphan = b.add(AlgOp::Distinct { input: lit });
        let keep = b.add(AlgOp::Distinct { input: lit });
        let plan = b.finish(keep);
        assert_eq!(plan.ops().len(), 3);
        assert_eq!(plan.operator_count(), 2);
    }

    #[test]
    fn histogram_counts_shared_nodes_once() {
        let plan = small_plan();
        let hist = plan.operator_histogram();
        let get = |name: &str| {
            hist.iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("table"), 1);
        assert_eq!(get("project"), 2);
        assert_eq!(get("equi-join"), 1);
    }

    #[test]
    #[should_panic(expected = "root id out of bounds")]
    fn invalid_root_panics() {
        Plan::new(vec![], 0);
    }
}
