//! Plan rendering — the demonstration's "graphical output of relational
//! query plans at different compilation stages" (Section 4, Figure 5).
//!
//! Two renderers are provided: Graphviz DOT (for graphical output) and an
//! indented ASCII tree with sharing markers (for terminal use and tests).

use std::collections::HashMap;

use crate::plan::{OpId, Plan};
use crate::properties::PlanProperties;

/// Render `plan` as a Graphviz DOT digraph.
pub fn to_dot(plan: &Plan) -> String {
    let mut out = String::from("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n");
    let reachable = plan.reachable();
    for &id in &reachable {
        let label = plan.op(id).symbol().replace('"', "\\\"");
        let shape_extra = if id == plan.root() {
            ", style=bold"
        } else {
            ""
        };
        out.push_str(&format!("  n{id} [label=\"{label}\"{shape_extra}];\n"));
    }
    for &id in &reachable {
        for child in plan.op(id).children() {
            out.push_str(&format!("  n{id} -> n{child};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Render `plan` as an indented ASCII tree rooted at the plan root.
///
/// Nodes referenced more than once (shared subexpressions) are expanded only
/// the first time; further references print `*see #id`.
pub fn to_ascii(plan: &Plan) -> String {
    let mut reference_count: HashMap<OpId, usize> = HashMap::new();
    for id in plan.reachable() {
        for child in plan.op(id).children() {
            *reference_count.entry(child).or_default() += 1;
        }
    }
    let mut out = String::new();
    let mut printed: HashMap<OpId, ()> = HashMap::new();
    render_node(
        plan,
        plan.root(),
        0,
        &reference_count,
        &mut printed,
        &mut out,
    );
    out
}

/// Render `plan` as an indented ASCII tree with each operator annotated
/// by its statically inferred properties (schema, keys, constants,
/// estimated rows) from [`PlanProperties`].
///
/// This is the dump the plan verifier embeds in its error messages, so
/// a rejected rewrite is debuggable without re-running the analysis by
/// hand.  The plan must be well-formed (the property pass assumes
/// resolvable children); for structurally broken plans use
/// [`to_ascii`].
pub fn to_ascii_annotated(plan: &Plan) -> String {
    let props = PlanProperties::analyze(plan);
    let mut reference_count: HashMap<OpId, usize> = HashMap::new();
    for id in plan.reachable() {
        for child in plan.op(id).children() {
            *reference_count.entry(child).or_default() += 1;
        }
    }
    let mut out = String::new();
    let mut printed: HashMap<OpId, ()> = HashMap::new();
    render_node_with(
        plan,
        plan.root(),
        0,
        &reference_count,
        &mut printed,
        &mut out,
        &|id| Some(annotate(&props, id)),
    );
    out
}

/// One operator's property annotation:
/// `{cols=[iter,pos] keys={pos} const=[iter=Nat(1)] rows≈12}`.
fn annotate(props: &PlanProperties, id: OpId) -> String {
    let cols = props.columns(id).join(",");
    let keys = props
        .keys(id)
        .iter()
        .map(|k| format!("{{{}}}", k.iter().cloned().collect::<Vec<_>>().join(",")))
        .collect::<Vec<_>>()
        .join("");
    let consts = props
        .constants(id)
        .iter()
        .map(|(c, v)| match v {
            Some(v) => format!("{c}={v:?}"),
            None => c.clone(),
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        " {{cols=[{cols}] keys=[{keys}] const=[{consts}] rows≈{:.0}}}",
        props.rows(id)
    )
}

fn render_node(
    plan: &Plan,
    id: OpId,
    depth: usize,
    refs: &HashMap<OpId, usize>,
    printed: &mut HashMap<OpId, ()>,
    out: &mut String,
) {
    render_node_with(plan, id, depth, refs, printed, out, &|_| None);
}

fn render_node_with(
    plan: &Plan,
    id: OpId,
    depth: usize,
    refs: &HashMap<OpId, usize>,
    printed: &mut HashMap<OpId, ()>,
    out: &mut String,
    annotation: &dyn Fn(OpId) -> Option<String>,
) {
    let indent = "  ".repeat(depth);
    let shared = refs.get(&id).copied().unwrap_or(0) > 1;
    if printed.contains_key(&id) && shared {
        out.push_str(&format!("{indent}*see #{id}\n"));
        return;
    }
    let marker = if shared {
        format!(" [#{id}]")
    } else {
        String::new()
    };
    let props = annotation(id).unwrap_or_default();
    out.push_str(&format!(
        "{indent}{}{marker}{props}\n",
        plan.op(id).symbol()
    ));
    printed.insert(id, ());
    for child in plan.op(id).children() {
        render_node_with(plan, child, depth + 1, refs, printed, out, annotation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AlgOp;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;

    fn shared_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Int(10)]],
        });
        let p1 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![("iter".into(), "iter".into())],
        });
        let p2 = b.add(AlgOp::Project {
            input: lit,
            columns: vec![("iter".into(), "iter1".into())],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: p1,
            right: p2,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        b.finish(join)
    }

    #[test]
    fn dot_output_contains_all_reachable_nodes_and_edges() {
        let plan = shared_plan();
        let dot = to_dot(&plan);
        assert!(dot.starts_with("digraph plan {"));
        assert_eq!(dot.matches("label=").count(), 4);
        assert_eq!(dot.matches("->").count(), 4);
        assert!(dot.contains("⋈"));
    }

    #[test]
    fn ascii_output_marks_shared_nodes() {
        let plan = shared_plan();
        let ascii = to_ascii(&plan);
        assert!(ascii.contains("⋈[iter=iter1]"));
        assert!(
            ascii.contains("*see #0"),
            "shared literal should be referenced: {ascii}"
        );
    }

    #[test]
    fn ascii_indentation_reflects_depth() {
        let plan = shared_plan();
        let ascii = to_ascii(&plan);
        let lines: Vec<&str> = ascii.lines().collect();
        assert!(lines[0].starts_with('⋈'));
        assert!(lines[1].starts_with("  π"));
    }

    #[test]
    fn annotated_ascii_carries_schema_keys_and_constants() {
        let plan = shared_plan();
        let ascii = to_ascii_annotated(&plan);
        let lines: Vec<&str> = ascii.lines().collect();
        // The join root: concatenated schema, a key (both sides are
        // single-row literals), and the constant join columns.
        assert!(lines[0].contains("cols=[iter,iter1]"), "{ascii}");
        assert!(lines[0].contains("keys=["), "{ascii}");
        assert!(lines[0].contains("iter=Nat(1)"), "{ascii}");
        assert!(lines[0].contains("rows≈1"), "{ascii}");
        // Sharing markers survive annotation.
        assert!(ascii.contains("*see #0"), "{ascii}");
    }
}
