//! The logical operators of the Pathfinder algebra.
//!
//! Every operator corresponds to a row of Table 1 in the paper (plus the
//! handful of helpers — aggregation, document access, node construction —
//! that the loop-lifting compilation scheme needs).  Children are referenced
//! by [`crate::plan::OpId`], so plans are DAGs and common
//! subexpressions can be shared.

use pf_relational::ops::{AggFunc, BinaryOp, IndexMode, IndexProbe, IndexTarget, UnaryOp};
use pf_relational::Value;
use pf_store::{Axis, NodeTest};

use crate::plan::OpId;

/// A sort key of the `%` (row numbering) operator.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    /// Column to order by.
    pub column: String,
    /// `true` for descending order.
    pub descending: bool,
}

impl SortSpec {
    /// Ascending sort on `column`.
    pub fn asc(column: impl Into<String>) -> Self {
        SortSpec {
            column: column.into(),
            descending: false,
        }
    }

    /// Descending sort on `column`.
    pub fn desc(column: impl Into<String>) -> Self {
        SortSpec {
            column: column.into(),
            descending: true,
        }
    }
}

/// A logical algebra operator.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgOp {
    /// A literal (constant) relation, e.g. the initial `loop` relation
    /// `{⟨iter:1⟩}` or the encoding of a literal sequence.
    Lit {
        /// Column names.
        columns: Vec<String>,
        /// Row values (each row has `columns.len()` entries).
        rows: Vec<Vec<Value>>,
    },
    /// The root node of a persistent document registered under `uri`
    /// (`fn:doc`).  Produces a single-row, single-column (`item`) table.
    Doc {
        /// Document URI as passed to `fn:doc`.
        uri: String,
    },
    /// π — projection / renaming: `(source, target)` pairs.
    Project {
        /// Input operator.
        input: OpId,
        /// `(source, target)` column pairs.
        columns: Vec<(String, String)>,
    },
    /// σ over a boolean column.
    Select {
        /// Input operator.
        input: OpId,
        /// Boolean column to filter on.
        column: String,
    },
    /// σ with an equality-to-constant predicate.
    SelectEq {
        /// Input operator.
        input: OpId,
        /// Column compared against the constant.
        column: String,
        /// The constant.
        value: Value,
    },
    /// δ — duplicate elimination over all columns.
    Distinct {
        /// Input operator.
        input: OpId,
    },
    /// ∪̇ — disjoint union.
    Union {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
    },
    /// \ — difference (rows of `left` not present in `right`).
    Difference {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
    },
    /// ⋈ — equi-join.
    EquiJoin {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
        /// Join column of the left input.
        left_col: String,
        /// Join column of the right input.
        right_col: String,
    },
    /// Theta-join with an arbitrary comparison predicate (used for the
    /// value-based joins of XMark Q11/Q12).
    ThetaJoin {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
        /// Left comparison column.
        left_col: String,
        /// The comparison operator.
        op: BinaryOp,
        /// Right comparison column.
        right_col: String,
    },
    /// × — Cartesian product.
    Cross {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
    },
    /// % — row numbering (MonetDB `mark`): 1-based numbering per partition
    /// in the order given by `order_by`.
    RowNum {
        /// Input operator.
        input: OpId,
        /// Name of the new numbering column.
        target: String,
        /// Ordering criteria.
        order_by: Vec<SortSpec>,
        /// Optional partitioning column.
        partition: Option<String>,
    },
    /// ⊙ — binary arithmetic / comparison / boolean operator, materializing
    /// its result as a new column.
    BinaryMap {
        /// Input operator.
        input: OpId,
        /// Result column name.
        target: String,
        /// Left operand column.
        left: String,
        /// The operator.
        op: BinaryOp,
        /// Right operand column.
        right: String,
    },
    /// Unary ⊙ (negation, casts).
    UnaryMap {
        /// Input operator.
        input: OpId,
        /// Result column name.
        target: String,
        /// The operator.
        op: UnaryOp,
        /// Operand column.
        source: String,
    },
    /// Attach a constant column (loop lifting of literals).
    Attach {
        /// Input operator.
        input: OpId,
        /// New column name.
        target: String,
        /// The constant value.
        value: Value,
    },
    /// Grouped aggregation (`fn:count`, `fn:sum`, …) — one row per group.
    Aggregate {
        /// Input operator.
        input: OpId,
        /// Grouping column (always `iter` in compiled plans).
        group: String,
        /// Result column name.
        target: String,
        /// Aggregation function.
        func: AggFunc,
        /// Aggregated column.
        value: String,
    },
    /// The staircase join: one XPath location step applied to a context
    /// table with columns `iter|item` (items are nodes).
    Step {
        /// Context input.
        input: OpId,
        /// The XPath axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
    },
    /// Index-accelerated candidate filter over an axis-step output
    /// (introduced by the `indexscan` optimizer rule, never by the
    /// compiler).  Keeps only rows whose `item` can possibly satisfy
    /// `probe` according to the sidecar indexes of the document `uri`;
    /// the untouched residual predicate above keeps answers exact.
    IndexScan {
        /// The step (or doc-order over a step) being filtered.
        input: OpId,
        /// URI of the document whose indexes answer the probe.
        uri: String,
        /// The recognized predicate pattern.
        probe: IndexProbe,
        /// How the residual consumes the rows (row filter vs per-`iter`
        /// EBV — the latter may only drop singleton groups).
        mode: IndexMode,
    },
    /// `fs:distinct-doc-order`: per `iter`, sort items into document order
    /// and remove duplicates.  Steps already produce this shape, which is
    /// why the optimizer can remove most of these operators.
    DocOrder {
        /// Input operator.
        input: OpId,
    },
    /// Atomization (`fn:data` / `fn:string`): map the `item` column to the
    /// string value of each node, leaving atomic items unchanged.
    FnData {
        /// Input operator.
        input: OpId,
    },
    /// `fn:root`: map the `item` column (nodes) to the document node of the
    /// document each node belongs to.
    FnRoot {
        /// Input operator.
        input: OpId,
    },
    /// Effective boolean value per `iter`: groups the input by `iter` and
    /// reduces each group's items to one boolean (empty group → the group
    /// does not appear; the compiler completes missing iterations with
    /// `false`).  Like ε and τ, this is a shorthand for an equivalent — but
    /// much larger — algebraic expression.
    Ebv {
        /// Input operator (`iter|pos|item`).
        input: OpId,
    },
    /// ε — element construction: per `iter` of the loop relation, build one
    /// new element node named `tag` whose content is the `content` table's
    /// items (in `pos` order).
    ElemConstruct {
        /// The loop relation (one row per iteration that constructs a node).
        loop_input: OpId,
        /// Element name.
        tag: String,
        /// Content relation (`iter|pos|item`).
        content: OpId,
    },
    /// Attribute construction (companion of ε for computed attributes).
    AttrConstruct {
        /// The loop relation.
        loop_input: OpId,
        /// Attribute name.
        name: String,
        /// Value relation (`iter|pos|item`), atomized and concatenated.
        content: OpId,
    },
    /// τ — text node construction.
    TextConstruct {
        /// The loop relation.
        loop_input: OpId,
        /// Content relation.
        content: OpId,
    },
    /// Explicit sort (used by `order by` back-mapping and serialization).
    Sort {
        /// Input operator.
        input: OpId,
        /// Sort keys.
        by: Vec<SortSpec>,
    },
}

impl AlgOp {
    /// Children of this operator (inputs referenced by id).
    pub fn children(&self) -> Vec<OpId> {
        match self {
            AlgOp::Lit { .. } | AlgOp::Doc { .. } => vec![],
            AlgOp::Project { input, .. }
            | AlgOp::Select { input, .. }
            | AlgOp::SelectEq { input, .. }
            | AlgOp::Distinct { input }
            | AlgOp::RowNum { input, .. }
            | AlgOp::BinaryMap { input, .. }
            | AlgOp::UnaryMap { input, .. }
            | AlgOp::Attach { input, .. }
            | AlgOp::Aggregate { input, .. }
            | AlgOp::Step { input, .. }
            | AlgOp::IndexScan { input, .. }
            | AlgOp::DocOrder { input }
            | AlgOp::FnData { input }
            | AlgOp::FnRoot { input }
            | AlgOp::Ebv { input }
            | AlgOp::Sort { input, .. } => vec![*input],
            AlgOp::Union { left, right }
            | AlgOp::Difference { left, right }
            | AlgOp::EquiJoin { left, right, .. }
            | AlgOp::ThetaJoin { left, right, .. }
            | AlgOp::Cross { left, right } => vec![*left, *right],
            AlgOp::ElemConstruct {
                loop_input,
                content,
                ..
            }
            | AlgOp::AttrConstruct {
                loop_input,
                content,
                ..
            }
            | AlgOp::TextConstruct {
                loop_input,
                content,
            } => vec![*loop_input, *content],
        }
    }

    /// Replace the `i`-th child with `new`.
    pub fn replace_child(&mut self, index: usize, new: OpId) {
        let set = |slot: &mut OpId| *slot = new;
        match self {
            AlgOp::Lit { .. } | AlgOp::Doc { .. } => {}
            AlgOp::Project { input, .. }
            | AlgOp::Select { input, .. }
            | AlgOp::SelectEq { input, .. }
            | AlgOp::Distinct { input }
            | AlgOp::RowNum { input, .. }
            | AlgOp::BinaryMap { input, .. }
            | AlgOp::UnaryMap { input, .. }
            | AlgOp::Attach { input, .. }
            | AlgOp::Aggregate { input, .. }
            | AlgOp::Step { input, .. }
            | AlgOp::IndexScan { input, .. }
            | AlgOp::DocOrder { input }
            | AlgOp::FnData { input }
            | AlgOp::FnRoot { input }
            | AlgOp::Ebv { input }
            | AlgOp::Sort { input, .. } => {
                if index == 0 {
                    set(input);
                }
            }
            AlgOp::Union { left, right }
            | AlgOp::Difference { left, right }
            | AlgOp::EquiJoin { left, right, .. }
            | AlgOp::ThetaJoin { left, right, .. }
            | AlgOp::Cross { left, right } => {
                if index == 0 {
                    set(left);
                } else {
                    set(right);
                }
            }
            AlgOp::ElemConstruct {
                loop_input,
                content,
                ..
            }
            | AlgOp::AttrConstruct {
                loop_input,
                content,
                ..
            }
            | AlgOp::TextConstruct {
                loop_input,
                content,
            } => {
                if index == 0 {
                    set(loop_input);
                } else {
                    set(content);
                }
            }
        }
    }

    /// Short operator name used by the plan renderers (mirrors the symbols
    /// of Table 1 where sensible).
    pub fn symbol(&self) -> String {
        match self {
            AlgOp::Lit { rows, .. } => format!("table[{}]", rows.len()),
            AlgOp::Doc { uri } => format!("doc(\"{uri}\")"),
            AlgOp::Project { columns, .. } => {
                let cols: Vec<String> = columns
                    .iter()
                    .map(|(s, t)| {
                        if s == t {
                            s.clone()
                        } else {
                            format!("{t}:{s}")
                        }
                    })
                    .collect();
                format!("π[{}]", cols.join(","))
            }
            AlgOp::Select { column, .. } => format!("σ[{column}]"),
            AlgOp::SelectEq { column, value, .. } => format!("σ[{column}={value}]"),
            AlgOp::Distinct { .. } => "δ".to_string(),
            AlgOp::Union { .. } => "∪".to_string(),
            AlgOp::Difference { .. } => "\\".to_string(),
            AlgOp::EquiJoin {
                left_col,
                right_col,
                ..
            } => format!("⋈[{left_col}={right_col}]"),
            AlgOp::ThetaJoin {
                left_col,
                op,
                right_col,
                ..
            } => format!("⋈θ[{left_col} {op:?} {right_col}]"),
            AlgOp::Cross { .. } => "×".to_string(),
            AlgOp::RowNum {
                target,
                order_by,
                partition,
                ..
            } => {
                let keys: Vec<&str> = order_by.iter().map(|s| s.column.as_str()).collect();
                match partition {
                    Some(p) => format!("%{target}:⟨{}⟩/{p}", keys.join(",")),
                    None => format!("%{target}:⟨{}⟩", keys.join(",")),
                }
            }
            AlgOp::BinaryMap {
                target,
                left,
                op,
                right,
                ..
            } => format!("⊙{target}:({left}{op:?}{right})"),
            AlgOp::UnaryMap {
                target, op, source, ..
            } => format!("⊙{target}:{op:?}({source})"),
            AlgOp::Attach { target, value, .. } => format!("@{target}:={value}"),
            AlgOp::Aggregate {
                target,
                func,
                value,
                ..
            } => format!("agg[{target}:={}({value})]", func.name()),
            AlgOp::Step { axis, test, .. } => format!("⇝[{}::{test:?}]", axis.name()),
            AlgOp::IndexScan { probe, mode, .. } => {
                let tag = match mode {
                    IndexMode::Exact => "σ",
                    IndexMode::Ebv => "ebv",
                };
                match probe {
                    IndexProbe::TextContains { needle } => format!("idx[text∋\"{needle}\"]/{tag}"),
                    IndexProbe::ValueCmp {
                        target,
                        op,
                        value,
                        to_number,
                    } => {
                        let name = match target {
                            IndexTarget::ElementTag(t) => t.clone(),
                            IndexTarget::AttributeName(n) => format!("@{n}"),
                        };
                        let cast = if *to_number { "number " } else { "" };
                        format!("idx[{cast}{name} {} {value}]/{tag}", op.name())
                    }
                }
            }
            AlgOp::DocOrder { .. } => "ddo".to_string(),
            AlgOp::FnData { .. } => "data".to_string(),
            AlgOp::FnRoot { .. } => "root".to_string(),
            AlgOp::Ebv { .. } => "ebv".to_string(),
            AlgOp::ElemConstruct { tag, .. } => format!("ε⟨{tag}⟩"),
            AlgOp::AttrConstruct { name, .. } => format!("α⟨@{name}⟩"),
            AlgOp::TextConstruct { .. } => "τ".to_string(),
            AlgOp::Sort { by, .. } => {
                let keys: Vec<&str> = by.iter().map(|s| s.column.as_str()).collect();
                format!("sort[{}]", keys.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_and_replace() {
        let mut op = AlgOp::EquiJoin {
            left: 3,
            right: 5,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        };
        assert_eq!(op.children(), vec![3, 5]);
        op.replace_child(1, 9);
        assert_eq!(op.children(), vec![3, 9]);

        let mut p = AlgOp::Project {
            input: 1,
            columns: vec![("a".into(), "b".into())],
        };
        p.replace_child(0, 7);
        assert_eq!(p.children(), vec![7]);

        let lit = AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        };
        assert!(lit.children().is_empty());
    }

    #[test]
    fn symbols_are_readable() {
        let op = AlgOp::RowNum {
            input: 0,
            target: "pos1".into(),
            order_by: vec![SortSpec::asc("iter"), SortSpec::asc("pos")],
            partition: Some("outer".into()),
        };
        assert_eq!(op.symbol(), "%pos1:⟨iter,pos⟩/outer");
        let op = AlgOp::Project {
            input: 0,
            columns: vec![
                ("iter".into(), "outer".into()),
                ("pos".into(), "pos".into()),
            ],
        };
        assert_eq!(op.symbol(), "π[outer:iter,pos]");
    }

    #[test]
    fn sortspec_constructors() {
        assert!(!SortSpec::asc("x").descending);
        assert!(SortSpec::desc("x").descending);
    }
}
