//! Peephole-style plan optimization.
//!
//! "Query plans can become quite large (XMark query Q8, e.g., prior to
//! optimization, compiles to a plan DAG of 120 operators).  This complexity
//! may significantly be reduced by peep-hole style optimization \[5\]."
//!
//! The rewrites implemented here are local (peephole) and exploit the
//! algebra's restrictions and the inferred properties of
//! [`crate::schema`]:
//!
//! 1. **Projection merging** — π(π(q)) ⇒ π(q) with composed renaming.
//! 2. **Identity projection removal** — a π that keeps every column of its
//!    input under the same name is dropped.
//! 3. **Redundant `ddo` removal** — `fs:distinct-doc-order` applied to an
//!    input that is already in distinct document order (e.g. directly after
//!    a staircase-join step) is dropped.
//! 4. **Redundant δ removal** — duplicate elimination over a provably
//!    duplicate-free input is dropped.
//! 5. **Common subexpression elimination** — structurally identical
//!    operators are merged, turning the plan into a maximally shared DAG.
//! 6. **Attach/constant folding into literals** — attaching a constant
//!    column to a literal table is evaluated at compile time.
//!
//! The optimizer runs the rewrites to a fixpoint and reports what it did;
//! the `plan_size` harness binary uses that report to reproduce the paper's
//! plan-complexity claim (experiment E5).

use std::collections::HashMap;

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};
use crate::schema::infer_schema;

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Reachable operators before optimization.
    pub operators_before: usize,
    /// Reachable operators after optimization.
    pub operators_after: usize,
    /// Number of merged projection pairs.
    pub projections_merged: usize,
    /// Number of identity projections removed.
    pub identity_projections_removed: usize,
    /// Number of redundant `ddo` operators removed.
    pub doc_orders_removed: usize,
    /// Number of redundant δ operators removed.
    pub distincts_removed: usize,
    /// Number of operators merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// Number of constant attaches folded into literal tables.
    pub constants_folded: usize,
}

impl OptimizeReport {
    /// Fraction of operators removed, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.operators_before == 0 {
            return 0.0;
        }
        100.0 * (self.operators_before - self.operators_after) as f64 / self.operators_before as f64
    }
}

/// Optimize `plan` in place and report what happened.
pub fn optimize(plan: &mut Plan) -> OptimizeReport {
    let mut report = OptimizeReport {
        operators_before: plan.operator_count(),
        ..Default::default()
    };
    // Run to a fixpoint; each pass is cheap (linear in plan size).
    loop {
        let mut changed = false;
        changed |= merge_projections(plan, &mut report);
        changed |= remove_identity_projections(plan, &mut report);
        changed |= remove_redundant_order_ops(plan, &mut report);
        changed |= fold_constant_attach(plan, &mut report);
        changed |= common_subexpressions(plan, &mut report);
        if !changed {
            break;
        }
    }
    report.operators_after = plan.operator_count();
    report
}

/// Redirect every reference to `from` so that it points to `to`.
fn redirect(plan: &mut Plan, from: OpId, to: OpId) {
    if plan.root() == from {
        plan.set_root(to);
    }
    let n = plan.ops().len();
    for id in 0..n {
        let children = plan.op(id).children();
        for (idx, child) in children.iter().enumerate() {
            if *child == from {
                plan.ops_mut()[id].replace_child(idx, to);
            }
        }
    }
}

/// Rewrite π(π(q)) into a single π with composed column mapping.
fn merge_projections(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    for id in plan.reachable() {
        let AlgOp::Project { input, columns } = plan.op(id).clone() else {
            continue;
        };
        let AlgOp::Project {
            input: inner_input,
            columns: inner_columns,
        } = plan.op(input).clone()
        else {
            continue;
        };
        // Compose: outer (source→target) looks up source in the inner map.
        let inner_map: HashMap<&str, &str> = inner_columns
            .iter()
            .map(|(s, t)| (t.as_str(), s.as_str()))
            .collect();
        let Some(composed) = columns
            .iter()
            .map(|(source, target)| {
                inner_map
                    .get(source.as_str())
                    .map(|orig| (orig.to_string(), target.clone()))
            })
            .collect::<Option<Vec<_>>>()
        else {
            continue;
        };
        plan.ops_mut()[id] = AlgOp::Project {
            input: inner_input,
            columns: composed,
        };
        report.projections_merged += 1;
        changed = true;
    }
    changed
}

/// Remove projections that keep all input columns under unchanged names.
fn remove_identity_projections(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let props = infer_schema(plan);
    let mut changed = false;
    for id in plan.reachable() {
        let AlgOp::Project { input, columns } = plan.op(id) else {
            continue;
        };
        let Some(child_props) = props.get(input) else {
            continue;
        };
        let identity = columns.len() == child_props.columns.len()
            && columns
                .iter()
                .zip(&child_props.columns)
                .all(|((s, t), c)| s == t && s == c);
        if identity {
            let input = *input;
            redirect(plan, id, input);
            report.identity_projections_removed += 1;
            changed = true;
        }
    }
    changed
}

/// Remove `ddo` over already document-ordered inputs and δ over already
/// distinct inputs.
fn remove_redundant_order_ops(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let props = infer_schema(plan);
    let mut changed = false;
    for id in plan.reachable() {
        match plan.op(id) {
            AlgOp::DocOrder { input }
                if props.get(input).map(|p| p.doc_ordered).unwrap_or(false) =>
            {
                let input = *input;
                redirect(plan, id, input);
                report.doc_orders_removed += 1;
                changed = true;
            }
            AlgOp::Distinct { input } if props.get(input).map(|p| p.distinct).unwrap_or(false) => {
                let input = *input;
                redirect(plan, id, input);
                report.distincts_removed += 1;
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Evaluate `Attach` over a literal table at compile time.
fn fold_constant_attach(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    for id in plan.reachable() {
        let AlgOp::Attach {
            input,
            target,
            value,
        } = plan.op(id).clone()
        else {
            continue;
        };
        let AlgOp::Lit { columns, rows } = plan.op(input).clone() else {
            continue;
        };
        let mut new_columns = columns.clone();
        new_columns.push(target.clone());
        let new_rows = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.push(value.clone());
                r
            })
            .collect();
        plan.ops_mut()[id] = AlgOp::Lit {
            columns: new_columns,
            rows: new_rows,
        };
        report.constants_folded += 1;
        changed = true;
    }
    changed
}

/// Merge structurally identical operators (after children have been merged —
/// processing in topological order guarantees this converges).
fn common_subexpressions(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    let mut canonical: HashMap<String, OpId> = HashMap::new();
    for id in plan.reachable() {
        // The Debug representation includes child ids, which at this point
        // already reference canonical representatives.
        let key = format!("{:?}", plan.op(id));
        match canonical.get(&key) {
            Some(&existing) if existing != id => {
                redirect(plan, id, existing);
                report.cse_merged += 1;
                changed = true;
            }
            Some(_) => {}
            None => {
                canonical.insert(key, id);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;
    use pf_store::{Axis, NodeTest};

    fn lit(b: &mut PlanBuilder) -> OpId {
        b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(1)]],
        })
    }

    #[test]
    fn merges_stacked_projections() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let p1 = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "outer".into()),
                ("item".into(), "item".into()),
            ],
        });
        let p2 = b.add(AlgOp::Project {
            input: p1,
            columns: vec![("outer".into(), "iter".into())],
        });
        let mut plan = b.finish(p2);
        let report = optimize(&mut plan);
        assert!(report.projections_merged >= 1);
        // The root is now a single projection straight over the literal.
        match plan.op(plan.root()) {
            AlgOp::Project { input, columns } => {
                assert_eq!(*input, l);
                assert_eq!(columns, &vec![("iter".to_string(), "iter".to_string())]);
            }
            other => panic!("expected projection, found {other:?}"),
        }
    }

    #[test]
    fn removes_identity_projection() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let p = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("pos".into(), "pos".into()),
                ("item".into(), "item".into()),
            ],
        });
        let d = b.add(AlgOp::Distinct { input: p });
        let mut plan = b.finish(d);
        let report = optimize(&mut plan);
        assert_eq!(report.identity_projections_removed, 1);
    }

    #[test]
    fn removes_redundant_doc_order_after_step() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: l,
            axis: Axis::Descendant,
            test: NodeTest::AnyElement,
        });
        let ddo = b.add(AlgOp::DocOrder { input: step });
        let mut plan = b.finish(ddo);
        let report = optimize(&mut plan);
        assert_eq!(report.doc_orders_removed, 1);
        assert_eq!(plan.root(), step);
    }

    #[test]
    fn removes_redundant_distinct() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: l,
            axis: Axis::Child,
            test: NodeTest::AnyNode,
        });
        let d = b.add(AlgOp::Distinct { input: step });
        let mut plan = b.finish(d);
        let report = optimize(&mut plan);
        assert_eq!(report.distincts_removed, 1);
    }

    #[test]
    fn cse_merges_identical_subplans() {
        let mut b = PlanBuilder::new();
        let l1 = lit(&mut b);
        let l2 = lit(&mut b);
        let p1 = b.add(AlgOp::Project {
            input: l1,
            columns: vec![("iter".into(), "iter".into()), ("item".into(), "a".into())],
        });
        let p2 = b.add(AlgOp::Project {
            input: l2,
            columns: vec![("iter".into(), "iter1".into()), ("item".into(), "b".into())],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: p1,
            right: p2,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        let mut plan = b.finish(join);
        let before = plan.operator_count();
        let report = optimize(&mut plan);
        assert!(report.cse_merged >= 1, "duplicate literals should merge");
        assert!(plan.operator_count() < before);
    }

    #[test]
    fn folds_constant_attach_into_literal() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)], vec![Value::Nat(2)]],
        });
        let a = b.add(AlgOp::Attach {
            input: l,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let mut plan = b.finish(a);
        let report = optimize(&mut plan);
        assert_eq!(report.constants_folded, 1);
        match plan.op(plan.root()) {
            AlgOp::Lit { columns, rows } => {
                assert_eq!(columns, &vec!["iter".to_string(), "pos".to_string()]);
                assert_eq!(rows[1], vec![Value::Nat(2), Value::Nat(1)]);
            }
            other => panic!("expected folded literal, found {other:?}"),
        }
    }

    #[test]
    fn optimization_reaches_a_fixpoint_and_shrinks() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let p = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("pos".into(), "pos".into()),
                ("item".into(), "item".into()),
            ],
        });
        let ddo = b.add(AlgOp::DocOrder { input: p });
        let d = b.add(AlgOp::Distinct { input: ddo });
        let mut plan = b.finish(d);
        let report = optimize(&mut plan);
        assert!(report.operators_after <= report.operators_before);
        assert!(report.reduction_percent() >= 0.0);
        // A second run must be a no-op.
        let report2 = optimize(&mut plan);
        assert_eq!(report2.operators_before, report2.operators_after);
    }
}
