//! Cardinality estimation over plan DAGs.
//!
//! [`CardEstimate`] assigns every reachable operator an estimated output
//! row count in one bottom-up pass.  Leaf estimates come from document
//! statistics ([`pf_store::DocStatistics`], resolved through a
//! [`StatsSource`] so `pf-algebra` stays ignorant of the engine's
//! registry); interior operators apply textbook selectivity heuristics.
//! The estimates only ever *order* alternatives — join reordering picks
//! the smallest leaf first, admission control sizes a cold plan — so
//! being roughly proportional matters, absolute accuracy does not.
//!
//! Axis steps are the one place statistics really pay off: a
//! `descendant::item` step over XMark produces exactly
//! `elements_tagged("item")` rows per distinct context root, and the
//! tag histogram knows that number precisely.  To find the right
//! histogram, the pass also threads *document provenance* upward: the
//! URI of the (single) `doc()` source feeding each operator's items.

use std::sync::Arc;

use pf_store::{Axis, DocStatistics};

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};

/// Resolves a document URI to its measured statistics.  The engine
/// implements this over its registry snapshot; [`NoStats`] is the
/// statistics-free fallback (pure heuristics).
pub trait StatsSource {
    /// Statistics for the document registered under `uri`, if known.
    fn doc_statistics(&self, uri: &str) -> Option<Arc<DocStatistics>>;
}

/// A [`StatsSource`] that knows nothing; every step falls back to
/// fan-out heuristics.
pub struct NoStats;

impl StatsSource for NoStats {
    fn doc_statistics(&self, _uri: &str) -> Option<Arc<DocStatistics>> {
        None
    }
}

/// Per-operator estimated output row counts for one plan.
#[derive(Debug, Clone)]
pub struct CardEstimate {
    rows: Vec<f64>,
}

impl CardEstimate {
    /// Estimate every operator of `plan` bottom-up.
    pub fn analyze(plan: &Plan, stats: &dyn StatsSource) -> CardEstimate {
        let n = plan.ops().len();
        let mut rows = vec![0.0_f64; n];
        // Document provenance: the URI of the single doc() source whose
        // nodes flow through this operator's item column, if unambiguous.
        let mut doc: Vec<Option<String>> = vec![None; n];
        for id in plan.reachable() {
            let (est, uri) = estimate_op(plan, id, &rows, &doc, stats);
            rows[id] = est;
            doc[id] = uri;
        }
        CardEstimate { rows }
    }

    /// Estimated output rows of operator `id`.
    pub fn rows(&self, id: OpId) -> f64 {
        self.rows.get(id).copied().unwrap_or(0.0)
    }

    /// The largest single-operator estimate of the plan, rounded up —
    /// a shape-derived stand-in for peak resident rows (admission
    /// control uses this for plans that have never run).
    pub fn peak_rows(&self, plan: &Plan) -> usize {
        plan.reachable()
            .into_iter()
            .map(|id| self.rows[id])
            .fold(0.0_f64, f64::max)
            .ceil() as usize
    }
}

fn estimate_op(
    plan: &Plan,
    id: OpId,
    rows: &[f64],
    doc: &[Option<String>],
    stats: &dyn StatsSource,
) -> (f64, Option<String>) {
    match plan.op(id) {
        AlgOp::Lit { rows: r, .. } => (r.len() as f64, None),
        AlgOp::Doc { uri } => (1.0, Some(uri.clone())),
        AlgOp::Step { input, axis, test } => {
            let input_rows = rows[*input];
            let uri = doc[*input].clone();
            if input_rows == 0.0 {
                return (0.0, uri);
            }
            let doc_stats = uri.as_deref().and_then(|u| stats.doc_statistics(u));
            let est = match (&doc_stats, axis) {
                // Every context set of size ≥ 1 sees (almost) the whole
                // document below it: the step output is bounded by — and
                // for the common root-context case equal to — the total
                // number of matching nodes.
                (Some(s), Axis::Descendant | Axis::DescendantOrSelf) => s.matching(test) as f64,
                (Some(s), Axis::Child) => {
                    // Uniform fan-out: matching nodes spread evenly over
                    // all possible element parents.
                    let parents = s.elements.max(1) as f64;
                    input_rows * (s.matching(test) as f64 / parents).max(1.0 / parents)
                }
                (Some(s), Axis::Attribute) => {
                    let owners = s.elements.max(1) as f64;
                    input_rows * (s.matching(test) as f64 / owners).min(1.0)
                }
                // Upward / sideways axes and the self axis stay near the
                // context size.
                (Some(_), _) => input_rows,
                // No statistics: fixed fan-out guesses.
                (None, Axis::Descendant | Axis::DescendantOrSelf) => input_rows * 8.0,
                (None, Axis::Child) => input_rows * 3.0,
                (None, Axis::Attribute) => input_rows,
                (None, _) => input_rows,
            };
            (est.max(0.0), uri)
        }
        AlgOp::Select { input, .. } => (rows[*input] * 0.5, doc[*input].clone()),
        // Index probes are selective by construction (the rule only fires
        // on literal lookups).
        AlgOp::IndexScan { input, .. } => (rows[*input] * 0.1, doc[*input].clone()),
        AlgOp::SelectEq { input, .. } => (rows[*input] * 0.1, doc[*input].clone()),
        AlgOp::Distinct { input } => (rows[*input] * 0.8, doc[*input].clone()),
        AlgOp::Union { left, right } => (rows[*left] + rows[*right], merge_doc(doc, *left, *right)),
        AlgOp::Difference { left, right: _ } => (rows[*left], doc[*left].clone()),
        AlgOp::Cross { left, right } => (rows[*left] * rows[*right], merge_doc(doc, *left, *right)),
        AlgOp::ThetaJoin { left, right, .. } => (
            rows[*left] * rows[*right] / 3.0,
            merge_doc(doc, *left, *right),
        ),
        // Loop-lifted equi-joins are overwhelmingly iter↔iter matches:
        // close to a 1:N alignment of the two sides, not a blow-up.
        AlgOp::EquiJoin { left, right, .. } => {
            (rows[*left].max(rows[*right]), merge_doc(doc, *left, *right))
        }
        AlgOp::Aggregate { input, .. } => ((rows[*input] * 0.5).max(1.0), doc[*input].clone()),
        AlgOp::Ebv { input } => ((rows[*input] * 0.5).max(1.0), doc[*input].clone()),
        // Row-preserving operators.
        AlgOp::Project { input, .. }
        | AlgOp::RowNum { input, .. }
        | AlgOp::BinaryMap { input, .. }
        | AlgOp::UnaryMap { input, .. }
        | AlgOp::Attach { input, .. }
        | AlgOp::DocOrder { input }
        | AlgOp::FnData { input }
        | AlgOp::FnRoot { input }
        | AlgOp::Sort { input, .. } => (rows[*input], doc[*input].clone()),
        // Constructors emit one node per loop iteration (content rows are
        // folded into those nodes).  The constructed nodes live in a new
        // transient document, so provenance resets.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => (rows[*loop_input], None),
    }
}

fn merge_doc(doc: &[Option<String>], left: OpId, right: OpId) -> Option<String> {
    match (&doc[left], &doc[right]) {
        (Some(l), Some(r)) if l == r => Some(l.clone()),
        (Some(l), None) => Some(l.clone()),
        (None, Some(r)) => Some(r.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AlgOp;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;
    use pf_store::{DocStore, NodeTest};
    use std::collections::HashMap;

    struct MapStats(HashMap<String, Arc<DocStatistics>>);

    impl StatsSource for MapStats {
        fn doc_statistics(&self, uri: &str) -> Option<Arc<DocStatistics>> {
            self.0.get(uri).cloned()
        }
    }

    fn xml_stats(uri: &str, xml: &str) -> MapStats {
        let store = DocStore::from_xml(uri, xml).unwrap();
        let mut map = HashMap::new();
        map.insert(uri.to_string(), Arc::new(DocStatistics::measure(&store)));
        MapStats(map)
    }

    #[test]
    fn descendant_step_estimates_from_tag_histogram() {
        let stats = xml_stats("d", "<a><b/><b/><b/><c/></a>");
        let mut b = PlanBuilder::new();
        let d = b.add(AlgOp::Doc { uri: "d".into() });
        let step = b.add(AlgOp::Step {
            input: d,
            axis: Axis::Descendant,
            test: NodeTest::Element("b".into()),
        });
        let plan = b.finish(step);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.rows(step), 3.0);
        assert_eq!(est.rows(d), 1.0);
    }

    #[test]
    fn empty_input_steps_estimate_zero() {
        let stats = xml_stats("d", "<a><b/></a>");
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: l,
            axis: Axis::Descendant,
            test: NodeTest::AnyElement,
        });
        let plan = b.finish(step);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.rows(step), 0.0);
    }

    #[test]
    fn provenance_survives_joins_and_selections() {
        let stats = xml_stats("d", "<a><b/><b/><c/><c/><c/><c/></a>");
        let mut b = PlanBuilder::new();
        let d = b.add(AlgOp::Doc { uri: "d".into() });
        let bs = b.add(AlgOp::Step {
            input: d,
            axis: Axis::Descendant,
            test: NodeTest::Element("b".into()),
        });
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: bs,
            right: lit,
            left_col: "iter".into(),
            right_col: "iter".into(),
        });
        // The join keeps the document provenance of its left side, so a
        // step above it still finds the tag histogram.
        let cs = b.add(AlgOp::Step {
            input: join,
            axis: Axis::Descendant,
            test: NodeTest::Element("c".into()),
        });
        let plan = b.finish(cs);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.rows(cs), 4.0);
        assert_eq!(est.rows(join), 2.0);
    }

    #[test]
    fn peak_rows_takes_the_plan_maximum() {
        let stats = NoStats;
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)], vec![Value::Nat(2)]],
        });
        let cross = b.add(AlgOp::Cross { left: l, right: l });
        let sel = b.add(AlgOp::SelectEq {
            input: cross,
            column: "iter".into(),
            value: Value::Nat(1),
        });
        let plan = b.finish(sel);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.peak_rows(&plan), 4); // the cross product dominates
    }
}
