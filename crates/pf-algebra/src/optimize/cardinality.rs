//! Cardinality estimation over plan DAGs.
//!
//! [`CardEstimate`] assigns every reachable operator an estimated output
//! row count.  Leaf estimates come from document statistics
//! ([`pf_store::DocStatistics`], resolved through a [`StatsSource`] so
//! `pf-algebra` stays ignorant of the engine's registry); interior
//! operators apply textbook selectivity heuristics.  The estimates only
//! ever *order* alternatives — join reordering picks the smallest leaf
//! first, admission control sizes a cold plan — so being roughly
//! proportional matters, absolute accuracy does not.
//!
//! Axis steps are the one place statistics really pay off: a
//! `descendant::item` step over XMark produces exactly
//! `elements_tagged("item")` rows per distinct context root, and the
//! tag histogram knows that number precisely.  To find the right
//! histogram, the inference also threads *document provenance* upward:
//! the URI of the (single) `doc()` source feeding each operator's items.
//!
//! The estimation itself lives in the unified property pass of
//! [`crate::properties::PlanProperties`]; [`CardEstimate`] is the
//! cardinality view over it, kept as a stable entry point for callers
//! that only need row counts (admission control's cold-plan sizing).

use crate::plan::{OpId, Plan};
use crate::properties::PlanProperties;

pub use crate::properties::{NoStats, StatsSource};

/// Per-operator estimated output row counts for one plan — a view over
/// [`PlanProperties`].
#[derive(Debug, Clone)]
pub struct CardEstimate {
    props: PlanProperties,
}

impl CardEstimate {
    /// Estimate every operator of `plan` bottom-up.
    pub fn analyze(plan: &Plan, stats: &dyn StatsSource) -> CardEstimate {
        CardEstimate {
            props: PlanProperties::analyze_with(plan, stats),
        }
    }

    /// Estimated output rows of operator `id`.
    pub fn rows(&self, id: OpId) -> f64 {
        self.props.rows(id)
    }

    /// The largest single-operator estimate of the plan, rounded up —
    /// a shape-derived stand-in for peak resident rows (admission
    /// control uses this for plans that have never run).
    pub fn peak_rows(&self, plan: &Plan) -> usize {
        self.props.peak_rows(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AlgOp;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;
    use pf_store::{Axis, DocStatistics, DocStore, NodeTest};
    use std::collections::HashMap;
    use std::sync::Arc;

    struct MapStats(HashMap<String, Arc<DocStatistics>>);

    impl StatsSource for MapStats {
        fn doc_statistics(&self, uri: &str) -> Option<Arc<DocStatistics>> {
            self.0.get(uri).cloned()
        }
    }

    fn xml_stats(uri: &str, xml: &str) -> MapStats {
        let store = DocStore::from_xml(uri, xml).unwrap();
        let mut map = HashMap::new();
        map.insert(uri.to_string(), Arc::new(DocStatistics::measure(&store)));
        MapStats(map)
    }

    #[test]
    fn descendant_step_estimates_from_tag_histogram() {
        let stats = xml_stats("d", "<a><b/><b/><b/><c/></a>");
        let mut b = PlanBuilder::new();
        let d = b.add(AlgOp::Doc { uri: "d".into() });
        let step = b.add(AlgOp::Step {
            input: d,
            axis: Axis::Descendant,
            test: NodeTest::Element("b".into()),
        });
        let plan = b.finish(step);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.rows(step), 3.0);
        assert_eq!(est.rows(d), 1.0);
    }

    #[test]
    fn empty_input_steps_estimate_zero() {
        let stats = xml_stats("d", "<a><b/></a>");
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: l,
            axis: Axis::Descendant,
            test: NodeTest::AnyElement,
        });
        let plan = b.finish(step);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.rows(step), 0.0);
    }

    #[test]
    fn provenance_survives_joins_and_selections() {
        let stats = xml_stats("d", "<a><b/><b/><c/><c/><c/><c/></a>");
        let mut b = PlanBuilder::new();
        let d = b.add(AlgOp::Doc { uri: "d".into() });
        let bs = b.add(AlgOp::Step {
            input: d,
            axis: Axis::Descendant,
            test: NodeTest::Element("b".into()),
        });
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: bs,
            right: lit,
            left_col: "iter".into(),
            right_col: "iter".into(),
        });
        // The join keeps the document provenance of its left side, so a
        // step above it still finds the tag histogram.
        let cs = b.add(AlgOp::Step {
            input: join,
            axis: Axis::Descendant,
            test: NodeTest::Element("c".into()),
        });
        let plan = b.finish(cs);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.rows(cs), 4.0);
        assert_eq!(est.rows(join), 2.0);
    }

    #[test]
    fn peak_rows_takes_the_plan_maximum() {
        let stats = NoStats;
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)], vec![Value::Nat(2)]],
        });
        let cross = b.add(AlgOp::Cross { left: l, right: l });
        let sel = b.add(AlgOp::SelectEq {
            input: cross,
            column: "iter".into(),
            value: Value::Nat(1),
        });
        let plan = b.finish(sel);
        let est = CardEstimate::analyze(&plan, &stats);
        assert_eq!(est.peak_rows(&plan), 4); // the cross product dominates
    }
}
