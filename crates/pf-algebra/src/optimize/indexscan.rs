//! Index-scan introduction: σ(content predicate over a step) → `IndexScan`.
//!
//! The loop-lifting compiler (`pf-xquery`) emits a small set of fixed
//! shapes for content predicates, and this rule recognizes exactly those:
//!
//! * **Exact** — the existential comparison: `σ_res` over
//!   `⊙res:(item ⋈cmp item1)` over an `iter`-equi-join of a step-derived
//!   side and a loop-lifted constant side.  Non-candidate step rows
//!   evaluate to `false` and are dropped by the σ anyway, so they can be
//!   filtered *before* the join.
//! * **Theta** — a θ-join whose one side is a loop-lifted literal and
//!   whose other side is a step chain (the compiled form of
//!   `number(step) <op> literal` in `where` clauses).  The join itself is
//!   the residual: it re-evaluates the comparison on every surviving
//!   pair, and every pair compares against the same literal.
//! * **Ebv** — the `ebv_bool` scaffolding of `where`/`if`/filters.  In
//!   the shape selection pushdown leaves behind, the σ sits directly on
//!   the `ebv` operator; the completed-`false` branch
//!   (`(loop \ π_iter(ebv)) @item:=false` re-filtered on `item`) hangs
//!   off the ebv's second consumer and can never emit a row.  A dropped
//!   singleton `iter` thus vanishes from both branches.  Groups of two or
//!   more rows short-circuit the effective boolean value to `true`
//!   without touching the predicate, so the executor only filters
//!   singleton groups ([`IndexMode::Ebv`]); statically we require the
//!   constant side to be keyed on its join column so group sizes at the
//!   splice point equal group sizes at the `ebv`.  The pre-pushdown
//!   variant — σ over the whole union — is matched as well.
//!
//! The spliced [`AlgOp::IndexScan`] sits directly above the step (below
//! the data/cast/projection chain), carries the probe and the document
//! URI (from the same provenance walk the cardinality estimator uses),
//! and keeps the original predicate untouched as the **residual**: index
//! candidates are a superset of the matching rows *and* of the rows on
//! which the predicate pipeline would raise an error, so answers and
//! error behavior stay byte-identical.
//!
//! The chain between the splice point and the recognized anchor must be
//! single-consumer — otherwise a third party would observe filtered
//! intermediates.  The step itself may stay shared; only the edge above
//! it is redirected.

use pf_relational::ops::{
    text_fragments, BinaryOp, CmpOp, IndexMode, IndexProbe, IndexTarget, UnaryOp,
};
use pf_relational::Value;
use pf_store::{Axis, NodeTest};

use crate::ops::AlgOp;
use crate::optimize::OptimizeReport;
use crate::plan::{OpId, Plan};
use crate::properties::PlanProperties;

/// Introduce at most one `IndexScan` per call (the fixpoint driver
/// re-invokes until nothing changes, with fresh consumer counts).
pub(crate) fn introduce_index_scans(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let consumers = plan.consumer_counts();
    // Document provenance and key sets both come from the unified
    // property pass (it used to be two separate walks).
    let props = PlanProperties::analyze(plan);
    for id in plan.reachable() {
        let rewrite = match plan.op(id) {
            AlgOp::Select { input, column } => {
                let (input, column) = (*input, column.clone());
                match_exact(plan, &consumers, &props, input, &column)
                    .or_else(|| match_ebv_union(plan, &consumers, &props, input, &column))
                    .or_else(|| match_ebv_pushed(plan, &consumers, &props, id, input, &column))
            }
            AlgOp::ThetaJoin {
                left,
                right,
                left_col,
                op,
                right_col,
            } => trace_sides(
                plan,
                &consumers,
                id,
                (*left, left_col),
                (*right, right_col),
                *op,
            )
            .and_then(|traced| build_rewrite(plan, &props, traced, IndexMode::Exact)),
            _ => continue,
        };
        let Some(rw) = rewrite else {
            continue;
        };
        let scan = AlgOp::IndexScan {
            input: rw.base,
            uri: rw.uri,
            probe: rw.probe,
            mode: rw.mode,
        };
        plan.ops_mut().push(scan);
        let scan_id = plan.ops().len() - 1;
        let slot = plan
            .op(rw.parent)
            .children()
            .iter()
            .position(|c| *c == rw.base)
            .expect("parent-child edge recorded during the walk");
        plan.ops_mut()[rw.parent].replace_child(slot, scan_id);
        report.index_scans_introduced += 1;
        return true;
    }
    false
}

/// One recognized splice: redirect `parent`'s edge to `base` through a new
/// `IndexScan{input: base, uri, probe, mode}`.
struct Rewrite {
    parent: OpId,
    base: OpId,
    uri: String,
    probe: IndexProbe,
    mode: IndexMode,
}

/// The step side of a recognized predicate: the chain walked down from the
/// comparison's operand column to the step (or ddo-over-step) `base`,
/// entered from `parent`.
struct NodeSide {
    parent: OpId,
    base: OpId,
    to_number: bool,
}

/// A fully traced comparison: the step side, the (possibly mirrored)
/// operator, the literal, and the constant side's `(operator, column)` —
/// the latter so EBV matching can require the constant side to be keyed.
type Traced = (NodeSide, BinaryOp, Value, (OpId, String));

/// Pattern A: `Select{mapped, res}` with
/// `mapped = BinaryMap{joined, res, item ⊙ item1}` over an equi-join of a
/// step chain and a constant chain.
fn match_exact(
    plan: &Plan,
    consumers: &[usize],
    props: &PlanProperties,
    mapped_id: OpId,
    column: &str,
) -> Option<Rewrite> {
    let AlgOp::BinaryMap {
        input: joined,
        target,
        left,
        op,
        right,
    } = plan.op(mapped_id)
    else {
        return None;
    };
    if target != column || consumers[mapped_id] != 1 {
        return None;
    }
    let AlgOp::EquiJoin {
        left: jl,
        right: jr,
        ..
    } = plan.op(*joined)
    else {
        return None;
    };
    if consumers[*joined] != 1 {
        return None;
    }
    let traced = trace_sides(plan, consumers, *joined, (*jl, left), (*jr, right), *op)?;
    build_rewrite(plan, props, traced, IndexMode::Exact)
}

/// Pattern B: the pre-pushdown `ebv_bool` scaffolding with the σ over its
/// union: `σ_item( π[iter,item](ebv) ∪ @item:=false(loop \ π_iter(ebv)) )`.
fn match_ebv_union(
    plan: &Plan,
    consumers: &[usize],
    props: &PlanProperties,
    union_id: OpId,
    column: &str,
) -> Option<Rewrite> {
    if column != "item" {
        return None;
    }
    let AlgOp::Union {
        left: present,
        right: missing,
    } = plan.op(union_id)
    else {
        return None;
    };
    if consumers[union_id] != 1 {
        return None;
    }
    // present = π[iter,item](ebv)
    let AlgOp::Project {
        input: ebv_id,
        columns: pc,
    } = plan.op(*present)
    else {
        return None;
    };
    if consumers[*present] != 1 || !same_mapping(pc, &[("iter", "iter"), ("item", "item")]) {
        return None;
    }
    let ebv_id = *ebv_id;
    if consumers[ebv_id] != 2 {
        return None;
    }
    // missing = @item:=false (loop \ π[iter](ebv))
    let AlgOp::Attach {
        input: diff,
        target,
        value,
    } = plan.op(*missing)
    else {
        return None;
    };
    if consumers[*missing] != 1 || target != "item" || *value != Value::Bool(false) {
        return None;
    }
    let AlgOp::Difference {
        left: _loop_rel,
        right: present_iters,
    } = plan.op(*diff)
    else {
        return None;
    };
    if consumers[*diff] != 1 {
        return None;
    }
    let AlgOp::Project {
        input: ebv_again,
        columns: pic,
    } = plan.op(*present_iters)
    else {
        return None;
    };
    if consumers[*present_iters] != 1
        || *ebv_again != ebv_id
        || !same_mapping(pic, &[("iter", "iter")])
    {
        return None;
    }
    ebv_predicate(plan, consumers, props, ebv_id)
}

/// Pattern B′: the post-pushdown `ebv_bool` scaffolding — the σ sits
/// directly on the `ebv`; its second consumer is the completed-`false`
/// branch, which re-filters on the constant `false` and so never emits a
/// row whatever flows into it.
fn match_ebv_pushed(
    plan: &Plan,
    consumers: &[usize],
    props: &PlanProperties,
    anchor_id: OpId,
    ebv_id: OpId,
    column: &str,
) -> Option<Rewrite> {
    if column != "item" || !matches!(plan.op(ebv_id), AlgOp::Ebv { .. }) {
        return None;
    }
    if consumers[ebv_id] != 2 {
        return None;
    }
    // The other consumer: π[iter](ebv), the right side of a difference,
    // completed to `false` and immediately σ-filtered on `item`.
    let others: Vec<OpId> = consumers_of(plan, ebv_id)
        .into_iter()
        .filter(|&c| c != anchor_id)
        .collect();
    let [iters_id] = others[..] else {
        return None;
    };
    let AlgOp::Project {
        input: ebv_again,
        columns: pic,
    } = plan.op(iters_id)
    else {
        return None;
    };
    if consumers[iters_id] != 1 || *ebv_again != ebv_id || !same_mapping(pic, &[("iter", "iter")]) {
        return None;
    }
    let [diff_id] = consumers_of(plan, iters_id)[..] else {
        return None;
    };
    let AlgOp::Difference { right, .. } = plan.op(diff_id) else {
        return None;
    };
    if *right != iters_id || consumers[diff_id] != 1 {
        return None;
    }
    let [attach_id] = consumers_of(plan, diff_id)[..] else {
        return None;
    };
    let AlgOp::Attach { target, value, .. } = plan.op(attach_id) else {
        return None;
    };
    if target != "item" || *value != Value::Bool(false) || consumers[attach_id] != 1 {
        return None;
    }
    let [kill_id] = consumers_of(plan, attach_id)[..] else {
        return None;
    };
    if !matches!(plan.op(kill_id), AlgOp::Select { column, .. } if column == "item") {
        return None;
    }
    ebv_predicate(plan, consumers, props, ebv_id)
}

/// The shared predicate half of both EBV patterns: walk the `ebv` input
/// through single-consumer projections to the comparison, require the
/// equi-join underneath, require the constant side keyed on its join
/// column (so dropping step rows drops whole `iter` groups and group
/// sizes at the splice point equal group sizes at the `ebv`), trace both
/// sides and build the [`IndexMode::Ebv`] rewrite.
fn ebv_predicate(
    plan: &Plan,
    consumers: &[usize],
    props: &PlanProperties,
    ebv_id: OpId,
) -> Option<Rewrite> {
    let AlgOp::Ebv { input: pred } = plan.op(ebv_id) else {
        return None;
    };
    let mut col = "item".to_string();
    let mut cur = *pred;
    loop {
        match plan.op(cur) {
            AlgOp::Project { input, columns } => {
                if consumers[cur] != 1 {
                    return None;
                }
                let (src, _) = columns.iter().find(|(_, t)| *t == col)?;
                col = src.clone();
                cur = *input;
            }
            AlgOp::BinaryMap { .. } => break,
            _ => return None,
        }
    }
    let AlgOp::BinaryMap {
        input: joined,
        target,
        left,
        op,
        right,
    } = plan.op(cur)
    else {
        return None;
    };
    if *target != col || consumers[cur] != 1 {
        return None;
    }
    let AlgOp::EquiJoin {
        left: jl,
        right: jr,
        left_col: jl_col,
        right_col: jr_col,
    } = plan.op(*joined)
    else {
        return None;
    };
    if consumers[*joined] != 1 || jl == jr {
        return None;
    }
    let traced = trace_sides(plan, consumers, *joined, (*jl, left), (*jr, right), *op)?;
    // EBV group sizes must equal step fan-out: the constant side may
    // contribute at most one row per iteration, i.e. its *join* column
    // must be a key (one constant row per iteration group).
    let const_id = traced.3 .0;
    let join_col = if const_id == *jl { jl_col } else { jr_col };
    let key: std::collections::BTreeSet<String> = [join_col.clone()].into();
    if !props.keyed_by(const_id, &key) {
        return None;
    }
    build_rewrite(plan, props, traced, IndexMode::Ebv)
}

/// Try (left = step side, right = constant side); on failure, the mirror
/// with a flipped comparison operator.  Substring tests only accept the
/// needle on the right.
fn trace_sides(
    plan: &Plan,
    consumers: &[usize],
    joined: OpId,
    (jl, left): (OpId, &str),
    (jr, right): (OpId, &str),
    op: BinaryOp,
) -> Option<Traced> {
    if let (Some(node), Some(constant)) = (
        trace_node_side(plan, consumers, joined, jl, left),
        trace_const_side(plan, jr, right),
    ) {
        return Some((node, op, constant, (jr, right.to_string())));
    }
    if let BinaryOp::Cmp(cmp) = op {
        if let (Some(node), Some(constant)) = (
            trace_node_side(plan, consumers, joined, jr, right),
            trace_const_side(plan, jl, left),
        ) {
            return Some((
                node,
                BinaryOp::Cmp(cmp.mirror()),
                constant,
                (jl, left.to_string()),
            ));
        }
    }
    None
}

/// Walk one join input down to a step (or ddo) whose `item` feeds `col`.
/// Only operators that cannot raise an error on a dropped row — and whose
/// effect on the probed column the probe replicates — are crossed:
/// projections (renaming), `fn:data` (atomization to the string value the
/// indexes store), constant attaches to *other* columns, and a single
/// `fn:number` cast on the probed column (recorded in the probe so cast
/// errors keep their rows as candidates).  Every crossed operator must be
/// single-consumer; the base may stay shared.
fn trace_node_side(
    plan: &Plan,
    consumers: &[usize],
    mut parent: OpId,
    mut cur: OpId,
    col: &str,
) -> Option<NodeSide> {
    let mut col = col.to_string();
    let mut to_number = false;
    loop {
        match plan.op(cur) {
            AlgOp::Step { .. } | AlgOp::DocOrder { .. } => {
                if col != "item" {
                    return None;
                }
                return Some(NodeSide {
                    parent,
                    base: cur,
                    to_number,
                });
            }
            AlgOp::Project { input, columns } => {
                if consumers[cur] != 1 {
                    return None;
                }
                let (src, _) = columns.iter().find(|(_, t)| *t == col)?;
                col = src.clone();
                parent = cur;
                cur = *input;
            }
            AlgOp::FnData { input } => {
                if consumers[cur] != 1 {
                    return None;
                }
                parent = cur;
                cur = *input;
            }
            AlgOp::Attach { input, target, .. } => {
                if consumers[cur] != 1 || *target == col {
                    return None;
                }
                parent = cur;
                cur = *input;
            }
            AlgOp::UnaryMap {
                input,
                target,
                op,
                source,
            } => {
                if consumers[cur] != 1 || *target != col || *op != UnaryOp::ToNumber || to_number {
                    return None;
                }
                to_number = true;
                col = source.clone();
                parent = cur;
                cur = *input;
            }
            _ => return None,
        }
    }
}

/// Walk one join input down to the loop-lifted literal it carries in
/// `col`.  No consumer constraints: the constant side is never modified.
fn trace_const_side(plan: &Plan, mut cur: OpId, col: &str) -> Option<Value> {
    let mut col = col.to_string();
    loop {
        match plan.op(cur) {
            AlgOp::Project { input, columns } => {
                let (src, _) = columns.iter().find(|(_, t)| *t == col)?;
                col = src.clone();
                cur = *input;
            }
            AlgOp::FnData { input } => cur = *input, // identity on atomics
            AlgOp::Attach {
                input,
                target,
                value,
            } => {
                if *target == col {
                    return Some(value.clone());
                }
                cur = *input;
            }
            AlgOp::RowNum { input, target, .. } => {
                if *target == col {
                    return None;
                }
                cur = *input;
            }
            AlgOp::Lit { columns, rows } => {
                let idx = columns.iter().position(|c| c == &col)?;
                let first = rows.first()?[idx].clone();
                return rows.iter().all(|r| r[idx] == first).then_some(first);
            }
            _ => return None,
        }
    }
}

/// Turn a traced (step side, operator, constant) triple into a rewrite,
/// checking the probe is actually answerable: known document, supported
/// operator/constant, and a step whose rows the probe understands.
fn build_rewrite(
    plan: &Plan,
    props: &PlanProperties,
    (node, op, constant, _const_side): Traced,
    mode: IndexMode,
) -> Option<Rewrite> {
    let uri = props.doc(node.base)?.to_string();
    let probe = match op {
        BinaryOp::Contains | BinaryOp::StartsWith => {
            if node.to_number {
                return None;
            }
            // Rows must be nodes: any ddo output, or any non-attribute step.
            match plan.op(node.base) {
                AlgOp::Step {
                    axis: Axis::Attribute,
                    ..
                } => return None,
                AlgOp::Step { .. } | AlgOp::DocOrder { .. } => {}
                _ => unreachable!("trace_node_side only returns steps and ddo"),
            }
            let needle = constant.to_xdm_string();
            if text_fragments(&needle).is_empty() {
                return None; // no alphanumeric content — the token index cannot filter
            }
            IndexProbe::TextContains { needle }
        }
        BinaryOp::Cmp(cmp) => {
            if cmp == CmpOp::Ne {
                return None; // candidates would be nearly everything
            }
            if matches!(constant, Value::Dbl(d) if d.is_nan()) || matches!(constant, Value::Node(_))
            {
                return None;
            }
            // The probe target must describe *every* row of the base: a
            // named-attribute step (rows are that attribute's values) or a
            // named-element step (rows are elements of that tag).
            let target = match plan.op(node.base) {
                AlgOp::Step {
                    axis: Axis::Attribute,
                    test: NodeTest::Attribute(name),
                    ..
                } => IndexTarget::AttributeName(name.clone()),
                AlgOp::Step {
                    axis: Axis::Attribute,
                    ..
                } => return None,
                AlgOp::Step {
                    test: NodeTest::Element(tag),
                    ..
                } => IndexTarget::ElementTag(tag.clone()),
                AlgOp::DocOrder { input } => match plan.op(*input) {
                    AlgOp::Step {
                        axis,
                        test: NodeTest::Element(tag),
                        ..
                    } if *axis != Axis::Attribute => IndexTarget::ElementTag(tag.clone()),
                    _ => return None,
                },
                _ => return None,
            };
            IndexProbe::ValueCmp {
                target,
                op: cmp,
                value: constant,
                to_number: node.to_number,
            }
        }
        _ => return None,
    };
    Some(Rewrite {
        parent: node.parent,
        base: node.base,
        uri,
        probe,
        mode,
    })
}

/// Set-equality of a projection mapping against an expected set.
fn same_mapping(columns: &[(String, String)], expected: &[(&str, &str)]) -> bool {
    columns.len() == expected.len()
        && expected
            .iter()
            .all(|(s, t)| columns.iter().any(|(cs, ct)| cs == s && ct == t))
}

/// The reachable operators consuming `target` (each listed once, however
/// many of its edges point there).
fn consumers_of(plan: &Plan, target: OpId) -> Vec<OpId> {
    plan.reachable()
        .into_iter()
        .filter(|&id| plan.op(id).children().contains(&target))
        .collect()
}
