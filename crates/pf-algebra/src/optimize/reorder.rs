//! Statistics-driven equi-join reordering.
//!
//! A *cluster* is a maximal tree of equi-joins connected through
//! single-consumer edges — the value join graph that loop-lifting
//! buries under order-maintenance plumbing.  Edges may run through
//! single-consumer `Project`/`Attach` interposers (renames, column
//! drops, attached constants): exactly the plumbing the lifted encoding
//! wraps around every join.  Once [`Isolation`](super::Isolation)
//! proves the cluster root
//! order-free (its left-major output order is unobservable in the
//! serialized result), the cluster is a plain bag-semantics join graph:
//! leaves are relations, the join columns are edges of a spanning tree.
//!
//! The pass rebuilds each such cluster as a left-deep chain, greedily
//! joining the smallest-estimated connected leaf next (per
//! [`CardEstimate`](super::CardEstimate)).  Leaf columns are α-renamed
//! (`col__jg<i>`) so
//! self-joins and colliding rename schemes stay unambiguous, and a
//! projection on top restores the original output columns — re-attaching
//! constants the interposers contributed — so downstream operators (and
//! `union_disjoint`'s schema-order check) never see a difference.
//!
//! The greedy order is deterministic, so a cluster already in greedy
//! left-deep shape is recognized and skipped — the surrounding fixpoint
//! terminates.

use std::collections::HashMap;

use super::cardinality::StatsSource;
use super::{redirect, OptimizeReport};
use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};
use crate::properties::PlanProperties;
use pf_relational::Value;

/// A join predicate resolved to leaf coordinates:
/// `((leaf, col), (leaf, col))`.
type Pred = ((usize, String), (usize, String));

/// Where a column visible at a cluster edge ultimately comes from.
#[derive(Debug, Clone, PartialEq)]
enum Origin {
    /// Column `1` of cluster leaf `0`.
    Leaf(usize, String),
    /// An `Attach`ed constant.
    Const(Value),
}

/// The α-name leaf `i`'s column `col` gets inside a rebuilt chain.
fn alpha(i: usize, col: &str) -> String {
    format!("{col}__jg{i}")
}

/// Reorder one equi-join cluster per call (the optimizer's fixpoint
/// loop drives repetition); `true` if a cluster was rewritten.
pub fn reorder_join_graphs(
    plan: &mut Plan,
    stats: &dyn StatsSource,
    report: &mut OptimizeReport,
) -> bool {
    // One unified analysis supplies order freedom, cardinalities, and
    // schemas (it used to be three separate passes).
    let props = PlanProperties::analyze_with(plan, stats);
    let consumers = plan.consumer_counts();
    let reachable = plan.reachable();

    let mut sole_parent: Vec<Option<OpId>> = vec![None; plan.ops().len()];
    for &p in &reachable {
        for c in plan.op(p).children() {
            sole_parent[c] = Some(p);
        }
    }
    // An equi-join is *interior* to a cluster when its only consumer —
    // looking up through single-consumer Project/Attach interposers —
    // is another equi-join; every other equi-join roots its own cluster.
    let interior = |mut id: OpId| -> bool {
        loop {
            if consumers[id] != 1 {
                return false;
            }
            let Some(p) = sole_parent[id] else {
                return false;
            };
            match plan.op(p) {
                AlgOp::EquiJoin { .. } => return true,
                AlgOp::Project { .. } | AlgOp::Attach { .. } => id = p,
                _ => return false,
            }
        }
    };

    for &root in &reachable {
        if !matches!(plan.op(root), AlgOp::EquiJoin { .. }) || interior(root) {
            continue;
        }
        if !props.order_free(root) {
            continue;
        }
        let Some(cluster) = collect_cluster(plan, root, &consumers, &props) else {
            continue;
        };
        let Cluster {
            leaves,
            preds,
            colmap,
        } = cluster;
        if leaves.len() < 3 {
            continue; // a 2-way join has nothing to reorder
        }

        // Greedy order: start at the smallest leaf, then repeatedly join
        // the smallest leaf connected to the accumulated set.  Each step
        // records the predicate oriented (set side, leaf side).  Bails
        // if the predicate graph does not span the leaves (a predicate
        // between already-connected leaves starves another leaf).
        //
        // All tie-breaks compare by *collection index* (leaves are
        // collected in DFS order, predicates in bottom-up post-order).
        // That makes the fixpoint check below trivial — a left-deep
        // chain in greedy shape collects exactly so that greedy returns
        // the identity order picking predicates in index order — and it
        // is stable across rebuilds: the rebuilt chain's DFS order *is*
        // the previous greedy order, so re-running greedy reproduces it
        // instead of oscillating between equal-estimate leaves.
        let leaf_rows = |idx: usize| props.rows(leaves[idx]);
        let n = leaves.len();
        let mut in_set = vec![false; n];
        let mut pred_used = vec![false; preds.len()];
        let start = (0..n)
            .min_by(|&a, &b| leaf_rows(a).total_cmp(&leaf_rows(b)).then(a.cmp(&b)))
            .unwrap();
        in_set[start] = true;
        let mut order = vec![start];
        // ((set leaf, set col), (new leaf, leaf col)) per chain step.
        type Step = Pred;
        let mut chain: Vec<(Step, usize)> = Vec::new();
        while order.len() < n {
            // (rows, leaf idx, pred idx, step).
            let mut best: Option<(f64, usize, usize, Step)> = None;
            for (pi, ((la, ca), (lb, cb))) in preds.iter().enumerate() {
                if pred_used[pi] {
                    continue;
                }
                let (set_side, leaf_side) = match (in_set[*la], in_set[*lb]) {
                    (true, false) => ((*la, ca.clone()), (*lb, cb.clone())),
                    (false, true) => ((*lb, cb.clone()), (*la, ca.clone())),
                    _ => continue,
                };
                let leaf = leaf_side.0;
                let key = (leaf_rows(leaf), leaf, pi, (set_side, leaf_side));
                let better = match &best {
                    None => true,
                    Some(cur) => key
                        .0
                        .total_cmp(&cur.0)
                        .then(key.1.cmp(&cur.1))
                        .then(key.2.cmp(&cur.2))
                        .is_lt(),
                };
                if better {
                    best = Some(key);
                }
            }
            let Some((_, _, pi, step)) = best else {
                break;
            };
            pred_used[pi] = true;
            in_set[step.1 .0] = true;
            order.push(step.1 .0);
            chain.push((step, pi));
        }
        if order.len() < n {
            continue; // not a spanning tree
        }

        // Fixpoint: the cluster collects bottom-up, so a chain already
        // in greedy left-deep shape yields the identity order with
        // predicates picked in index order (and only such a chain can —
        // a bushy subtree's internal predicate connects leaves outside
        // the growing set and forces an out-of-order pick).
        if order.iter().enumerate().all(|(i, &l)| l == i)
            && chain.iter().enumerate().all(|(k, (_, pi))| *pi == k)
        {
            continue;
        }
        let chain: Vec<Step> = chain.into_iter().map(|(step, _)| step).collect();

        // Each leaf only needs the columns the predicates and the root
        // schema reference.
        let root_cols = props.columns(root).to_vec();
        let mut needed: Vec<Vec<String>> = vec![Vec::new(); n];
        let mut need = |leaf: usize, col: &str| {
            if !needed[leaf].iter().any(|c| c == col) {
                needed[leaf].push(col.to_string());
            }
        };
        for ((la, ca), (lb, cb)) in &preds {
            need(*la, ca);
            need(*lb, cb);
        }
        for col in &root_cols {
            if let Some(Origin::Leaf(leaf, src)) = colmap.get(col) {
                need(*leaf, src);
            }
        }

        // Rebuild: α-projected leaves, left-deep chain, restore
        // projection (re-attaching interposer constants).
        let alpha_leaf: Vec<OpId> = (0..n)
            .map(|i| {
                let columns = needed[i].iter().map(|c| (c.clone(), alpha(i, c))).collect();
                plan.ops_mut().push(AlgOp::Project {
                    input: leaves[i],
                    columns,
                });
                plan.ops_mut().len() - 1
            })
            .collect();
        let mut acc = alpha_leaf[order[0]];
        for ((sl, sc), (ll, lc)) in &chain {
            plan.ops_mut().push(AlgOp::EquiJoin {
                left: acc,
                right: alpha_leaf[*ll],
                left_col: alpha(*sl, sc),
                right_col: alpha(*ll, lc),
            });
            acc = plan.ops_mut().len() - 1;
        }
        let mut restore: Vec<(String, String)> = Vec::new();
        for col in &root_cols {
            match &colmap[col] {
                Origin::Leaf(leaf, src) => restore.push((alpha(*leaf, src), col.clone())),
                Origin::Const(value) => {
                    plan.ops_mut().push(AlgOp::Attach {
                        input: acc,
                        target: col.clone(),
                        value: value.clone(),
                    });
                    acc = plan.ops_mut().len() - 1;
                    restore.push((col.clone(), col.clone()));
                }
            }
        }
        plan.ops_mut().push(AlgOp::Project {
            input: acc,
            columns: restore,
        });
        let pi_op = plan.ops_mut().len() - 1;
        redirect(plan, root, pi_op);
        report.joins_reordered += 1;
        return true;
    }
    false
}

struct Cluster {
    /// Leaf operators (the direct children where peeling stopped).
    leaves: Vec<OpId>,
    /// Join predicates resolved to leaf origins:
    /// `((leaf, col), (leaf, col))`.
    preds: Vec<Pred>,
    /// The cluster root's visible columns → their origins.
    colmap: HashMap<String, Origin>,
}

/// Collect the cluster rooted at the equi-join `root`: recurse through
/// single-consumer `Project`/`Attach` interposers into interior joins,
/// recording leaves, predicates (in leaf coordinates), and the root's
/// column origins.  `None` if any predicate resolves to a constant or a
/// column origin is ambiguous.
fn collect_cluster(
    plan: &Plan,
    root: OpId,
    consumers: &[usize],
    props: &PlanProperties,
) -> Option<Cluster> {
    let mut leaves: Vec<OpId> = Vec::new();
    let mut preds: Vec<Pred> = Vec::new();
    let colmap = collect_edge(plan, root, true, consumers, props, &mut leaves, &mut preds)?;
    Some(Cluster {
        leaves,
        preds,
        colmap,
    })
}

/// Resolve one cluster edge starting at `node` (a direct child of a
/// cluster join, or the root itself when `is_root`): peel interposers,
/// recurse into interior joins, and return the column→origin map
/// visible at `node`.
fn collect_edge(
    plan: &Plan,
    node: OpId,
    is_root: bool,
    consumers: &[usize],
    props: &PlanProperties,
    leaves: &mut Vec<OpId>,
    preds: &mut Vec<Pred>,
) -> Option<HashMap<String, Origin>> {
    // Walk the interposer chain down to a join or a leaf.
    let mut interposers: Vec<OpId> = Vec::new();
    let mut cur = node;
    let bottom = loop {
        if !is_root && consumers[cur] != 1 {
            break None; // shared chain: the direct child stays a leaf
        }
        match plan.op(cur) {
            AlgOp::EquiJoin { .. } => break Some(cur),
            AlgOp::Project { input, .. } | AlgOp::Attach { input, .. } if !is_root => {
                interposers.push(cur);
                cur = *input;
            }
            _ => break None,
        }
    };
    let mut map: HashMap<String, Origin> = match bottom {
        Some(join) => {
            let AlgOp::EquiJoin {
                left,
                right,
                left_col,
                right_col,
            } = plan.op(join)
            else {
                unreachable!("bottom of a cluster edge chain is an equi-join");
            };
            let lmap = collect_edge(plan, *left, false, consumers, props, leaves, preds)?;
            let rmap = collect_edge(plan, *right, false, consumers, props, leaves, preds)?;
            let (Some(Origin::Leaf(la, ca)), Some(Origin::Leaf(lb, cb))) =
                (lmap.get(left_col), rmap.get(right_col))
            else {
                return None; // predicate over an attached constant
            };
            preds.push(((*la, ca.clone()), (*lb, cb.clone())));
            let mut map = lmap;
            for (col, origin) in rmap {
                if map.insert(col, origin).is_some() {
                    return None; // colliding schemas: ambiguous origin
                }
            }
            map
        }
        None => {
            // A leaf: the whole chain (interposers included) stays
            // intact as one relation.
            let leaf = node;
            let idx = leaves.len();
            leaves.push(leaf);
            return Some(
                props
                    .schema(leaf)?
                    .columns
                    .iter()
                    .map(|c| (c.clone(), Origin::Leaf(idx, c.clone())))
                    .collect(),
            );
        }
    };
    // Apply the interposers bottom-up onto the join's column map.
    for &ip in interposers.iter().rev() {
        match plan.op(ip) {
            AlgOp::Project { columns, .. } => {
                let mut next = HashMap::new();
                for (src, tgt) in columns {
                    next.insert(tgt.clone(), map.get(src)?.clone());
                }
                map = next;
            }
            AlgOp::Attach { target, value, .. } => {
                map.insert(target.clone(), Origin::Const(value.clone()));
            }
            _ => unreachable!("interposers are projects or attaches"),
        }
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::cardinality::NoStats;
    use crate::plan::PlanBuilder;
    use crate::schema::infer_schema;
    use pf_relational::Value;

    /// A distinct single-iteration relation with `rows` rows and columns
    /// `{key_col, val_col}`; key values are 0..rows so every column is a
    /// key and joins on shared key ranges behave like a star schema.
    fn relation(b: &mut PlanBuilder, key_col: &str, val_col: &str, rows: u64) -> OpId {
        b.add(AlgOp::Lit {
            columns: vec![key_col.into(), val_col.into()],
            rows: (0..rows)
                .map(|i| vec![Value::Nat(i), Value::Nat(i * 10)])
                .collect(),
        })
    }

    /// root := ((A ⋈ B) ⋈ C) with A largest — greedy should restructure
    /// so the small leaves join first.
    fn three_way(b: &mut PlanBuilder) -> (OpId, OpId, OpId, OpId) {
        let a = relation(b, "a_k", "b_k", 40); // 40 rows: the big one
        let bb = relation(b, "b_k2", "c_k", 4);
        let c = relation(b, "c_k2", "c_v", 2);
        let j1 = b.add(AlgOp::EquiJoin {
            left: a,
            right: bb,
            left_col: "b_k".into(),
            right_col: "b_k2".into(),
        });
        let j2 = b.add(AlgOp::EquiJoin {
            left: j1,
            right: c,
            left_col: "c_k".into(),
            right_col: "c_k2".into(),
        });
        (a, bb, c, j2)
    }

    /// Wrap `input` so the root is order-free: attach pos, rownum-free.
    fn finish_order_free(mut b: PlanBuilder, input: OpId) -> Plan {
        // Rows are keyed by a_k (all-distinct); project it onto pos so
        // serialization's pos sort covers a key.
        let p = b.add(AlgOp::Project {
            input,
            columns: vec![("a_k".into(), "pos".into()), ("c_v".into(), "item".into())],
        });
        b.finish(p)
    }

    /// Follow a chain of α-rename projections down to the underlying
    /// relation.
    fn through_projects(plan: &Plan, mut id: OpId) -> OpId {
        while let AlgOp::Project { input, .. } = plan.op(id) {
            id = *input;
        }
        id
    }

    #[test]
    fn reorders_left_deep_by_estimate_and_restores_columns() {
        let mut b = PlanBuilder::new();
        let (_a, bb, c, root) = three_way(&mut b);
        let mut plan = finish_order_free(b, root);
        let before_props = infer_schema(&plan);
        let before_cols = before_props[&root].columns.clone();
        let mut report = OptimizeReport::default();
        assert!(reorder_join_graphs(&mut plan, &NoStats, &mut report));
        assert_eq!(report.joins_reordered, 1);
        // The restore projection feeds the old root's consumers with the
        // original column order.
        let AlgOp::Project { input, .. } = plan.op(plan.root()) else {
            panic!("root stays the outer projection");
        };
        let AlgOp::Project {
            input: restore_in,
            columns: restore_cols,
        } = plan.op(*input)
        else {
            panic!("expected the restore projection, got {:?}", plan.op(*input));
        };
        assert_eq!(
            restore_cols
                .iter()
                .map(|(_, t)| t.clone())
                .collect::<Vec<_>>(),
            before_cols
        );
        // The chain starts from the smallest leaf: C ⋈ B, then A.
        let AlgOp::EquiJoin { left, right, .. } = plan.op(*restore_in) else {
            panic!("expected the top of the rebuilt chain");
        };
        let AlgOp::EquiJoin {
            left: inner_left,
            right: inner_right,
            ..
        } = plan.op(*left)
        else {
            panic!("expected the bottom join of the chain");
        };
        assert_eq!(through_projects(&plan, *inner_left), c);
        assert_eq!(through_projects(&plan, *inner_right), bb);
        // A joins last.
        assert!(matches!(
            plan.op(through_projects(&plan, *right)),
            AlgOp::Lit { .. }
        ));
    }

    #[test]
    fn reordering_reaches_a_fixpoint() {
        let mut b = PlanBuilder::new();
        let (_a, _bb, _c, root) = three_way(&mut b);
        let mut plan = finish_order_free(b, root);
        let mut report = OptimizeReport::default();
        assert!(reorder_join_graphs(&mut plan, &NoStats, &mut report));
        let mut report2 = OptimizeReport::default();
        assert!(!reorder_join_graphs(&mut plan, &NoStats, &mut report2));
        assert_eq!(report2.joins_reordered, 0);
    }

    #[test]
    fn order_sensitive_roots_are_left_alone() {
        let mut b = PlanBuilder::new();
        let (_a, _bb, _c, root) = three_way(&mut b);
        // No pos column at the root: serialization order depends on row
        // order, so the cluster must not move.
        let p = b.add(AlgOp::Project {
            input: root,
            columns: vec![("c_v".into(), "item".into())],
        });
        let mut plan = b.finish(p);
        let mut report = OptimizeReport::default();
        assert!(!reorder_join_graphs(&mut plan, &NoStats, &mut report));
    }

    #[test]
    fn two_way_joins_are_left_alone() {
        let mut b = PlanBuilder::new();
        let a = relation(&mut b, "a_k", "b_k", 10);
        let bb = relation(&mut b, "b_k2", "c_v", 2);
        let j = b.add(AlgOp::EquiJoin {
            left: a,
            right: bb,
            left_col: "b_k".into(),
            right_col: "b_k2".into(),
        });
        let p = b.add(AlgOp::Project {
            input: j,
            columns: vec![("a_k".into(), "pos".into()), ("c_v".into(), "item".into())],
        });
        let mut plan = b.finish(p);
        let mut report = OptimizeReport::default();
        assert!(!reorder_join_graphs(&mut plan, &NoStats, &mut report));
    }

    /// The loop-lifted shape: joins separated by rename projections and
    /// attached constants.  The cluster must see through the plumbing,
    /// reorder the three leaves, and restore the renamed/attached root
    /// schema.
    #[test]
    fn clusters_reach_through_project_and_attach_interposers() {
        let mut b = PlanBuilder::new();
        let a = relation(&mut b, "a_k", "b_k", 40);
        let bb = relation(&mut b, "b_k2", "c_k", 4);
        let c = relation(&mut b, "c_k2", "c_v", 2);
        let j1 = b.add(AlgOp::EquiJoin {
            left: a,
            right: bb,
            left_col: "b_k".into(),
            right_col: "b_k2".into(),
        });
        // Interposers: rename c_k → hop, attach a constant flag.
        let ren = b.add(AlgOp::Project {
            input: j1,
            columns: vec![("a_k".into(), "a_k".into()), ("c_k".into(), "hop".into())],
        });
        let att = b.add(AlgOp::Attach {
            input: ren,
            target: "flag".into(),
            value: Value::Nat(7),
        });
        let j2 = b.add(AlgOp::EquiJoin {
            left: att,
            right: c,
            left_col: "hop".into(),
            right_col: "c_k2".into(),
        });
        let p = b.add(AlgOp::Project {
            input: j2,
            columns: vec![
                ("a_k".into(), "pos".into()),
                ("flag".into(), "flag".into()),
                ("c_v".into(), "item".into()),
            ],
        });
        let mut plan = b.finish(p);
        let mut report = OptimizeReport::default();
        assert!(
            reorder_join_graphs(&mut plan, &NoStats, &mut report),
            "interposed cluster should be reordered"
        );
        assert_eq!(report.joins_reordered, 1);
        // Fixpoint holds on the rebuilt shape.
        let mut report2 = OptimizeReport::default();
        assert!(!reorder_join_graphs(&mut plan, &NoStats, &mut report2));
        // The attached constant column survives at the root.
        let schema = infer_schema(&plan);
        assert!(schema[&plan.root()].columns.iter().any(|c| c == "flag"));
    }
}
