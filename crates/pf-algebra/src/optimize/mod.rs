//! Peephole-style plan optimization.
//!
//! "Query plans can become quite large (XMark query Q8, e.g., prior to
//! optimization, compiles to a plan DAG of 120 operators).  This complexity
//! may significantly be reduced by peep-hole style optimization \[5\]."
//!
//! The rewrites implemented here are local (peephole) and exploit the
//! algebra's restrictions and the inferred properties of
//! [`crate::schema`]:
//!
//! 1. **Projection merging** — π(π(q)) ⇒ π(q) with composed renaming.
//! 2. **Identity projection removal** — a π that keeps every column of its
//!    input under the same name is dropped.
//! 3. **Redundant `ddo` removal** — `fs:distinct-doc-order` applied to an
//!    input that is already in distinct document order (e.g. directly after
//!    a staircase-join step) is dropped.
//! 4. **Redundant δ removal** — duplicate elimination over a provably
//!    duplicate-free input is dropped.
//! 5. **Common subexpression elimination** — structurally identical
//!    operators are merged, turning the plan into a maximally shared DAG.
//! 6. **Attach/constant folding into literals** — attaching a constant
//!    column to a literal table is evaluated at compile time.
//!
//! The optimizer runs the rewrites to a fixpoint and reports what it did;
//! the `plan_size` harness binary uses that report to reproduce the paper's
//! plan-complexity claim (experiment E5).
//!
//! ## Join-graph isolation (the `full` level)
//!
//! On top of the basic peephole pass, [`optimize_with`] untangles the
//! order-maintenance scaffolding (rownum / `iter`-plumbing) from the value
//! predicates — the rewrite "XQuery Join Graph Isolation" (Grust et al.)
//! describes for exactly these plan DAGs:
//!
//! * [`isolation`] — infers, per operator, key sets, constant columns and
//!   whether the operator's *row order* can influence the serialized
//!   result at all.  Serialization stably re-sorts the root by `pos` and
//!   most order-maintenance operators either normalize their input
//!   (steps, `ddo`) or number it deterministically when their sort keys
//!   cover a key (rownum), so large plan regions are provably order-free.
//! * [`pushdown`] — pushes σ below joins and through
//!   projections/attach/maps (order-preserving rewrites, safe
//!   everywhere), and folds σ/π over literal tables at compile time.
//! * [`reorder`] — reorders equi-join clusters inside order-free regions,
//!   greedily joining the smallest-estimated leaves first per
//!   [`cardinality::CardEstimate`] (document statistics from
//!   `pf-store`).
//! * [`dedup`] — hash-consed common-subplan elimination in one bottom-up
//!   pass (replaces the fixpoint string-keyed CSE of the basic level),
//!   plus a post-fixpoint *unshare* pass that clones cheap shared
//!   operators so each copy fuses into its consumer's pipeline.
//!
//! Every rule is independently toggleable via [`OptimizerLevel`]; the
//! engine exposes them through `PF_OPTIMIZE` /
//! `EngineOptions::optimizer_level`.  All full-level rewrites preserve
//! the serialized result byte for byte (pinned by
//! `tests/optimize_agreement.rs` across the whole
//! threads × morsel × fusion matrix).

use std::collections::HashMap;

pub mod cardinality;
pub mod dedup;
pub mod indexscan;
pub mod isolation;
pub mod pushdown;
pub mod reorder;

pub use cardinality::{CardEstimate, NoStats, StatsSource};
pub use isolation::Isolation;

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};
use crate::schema::infer_schema;

/// Which rewrite rules [`optimize_with`] runs: the basic peephole pass is
/// always on; each join-graph-isolation rule has its own toggle so rules
/// can be measured (and property-tested) in isolation.
///
/// [`OptimizerLevel::BASIC`] is exactly the pre-isolation optimizer;
/// [`OptimizerLevel::FULL`] (the default) enables everything.  A level
/// parses from the `PF_OPTIMIZE` syntax: `basic`, `full`, or a
/// comma-separated rule list such as `pushdown,dedup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptimizerLevel {
    /// Push selections below joins / through π, attach and maps, and fold
    /// σ/π over literal tables.
    pub pushdown: bool,
    /// Reorder equi-join clusters in order-free regions by cardinality
    /// estimate.
    pub reorder: bool,
    /// Hash-consed subplan dedup (one-pass replacement for the string CSE).
    pub dedup: bool,
    /// Clone cheap shared operators after the fixpoint so pipeline fusion
    /// sees single-consumer chains.
    pub unshare: bool,
    /// Rewrite recognized content predicates over axis steps into
    /// [`AlgOp::IndexScan`] candidate filters backed by the sidecar
    /// document indexes (the residual predicate stays in place, so
    /// answers are exact).
    pub indexscan: bool,
}

impl OptimizerLevel {
    /// Today's peephole pass, nothing else.
    pub const BASIC: OptimizerLevel = OptimizerLevel {
        pushdown: false,
        reorder: false,
        dedup: false,
        unshare: false,
        indexscan: false,
    };

    /// Every rule on (the engine default).
    pub const FULL: OptimizerLevel = OptimizerLevel {
        pushdown: true,
        reorder: true,
        dedup: true,
        unshare: true,
        indexscan: true,
    };

    /// `true` if no isolation rule is enabled.
    pub fn is_basic(self) -> bool {
        self == OptimizerLevel::BASIC
    }

    /// Parse the `PF_OPTIMIZE` syntax: `basic`, `full` (or an empty
    /// string), or a comma-separated subset of
    /// `pushdown`/`reorder`/`dedup`/`unshare`/`indexscan`.  `None` for
    /// anything else.
    pub fn parse(spec: &str) -> Option<OptimizerLevel> {
        let spec = spec.trim();
        match spec.to_ascii_lowercase().as_str() {
            "" | "full" => return Some(OptimizerLevel::FULL),
            "basic" => return Some(OptimizerLevel::BASIC),
            _ => {}
        }
        let mut level = OptimizerLevel::BASIC;
        for rule in spec.split(',') {
            match rule.trim().to_ascii_lowercase().as_str() {
                "pushdown" => level.pushdown = true,
                "reorder" => level.reorder = true,
                "dedup" => level.dedup = true,
                "unshare" => level.unshare = true,
                "indexscan" => level.indexscan = true,
                _ => return None,
            }
        }
        Some(level)
    }

    /// Stable textual tag (round-trips through [`OptimizerLevel::parse`]);
    /// the engine embeds this in plan-cache keys so plans compiled at
    /// different levels never alias.
    pub fn tag(self) -> String {
        if self == OptimizerLevel::FULL {
            return "full".into();
        }
        if self == OptimizerLevel::BASIC {
            return "basic".into();
        }
        let mut rules = Vec::new();
        if self.pushdown {
            rules.push("pushdown");
        }
        if self.reorder {
            rules.push("reorder");
        }
        if self.dedup {
            rules.push("dedup");
        }
        if self.unshare {
            rules.push("unshare");
        }
        if self.indexscan {
            rules.push("indexscan");
        }
        rules.join(",")
    }
}

impl Default for OptimizerLevel {
    fn default() -> Self {
        OptimizerLevel::FULL
    }
}

impl std::fmt::Display for OptimizerLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Reachable operators before optimization.
    pub operators_before: usize,
    /// Reachable operators after optimization.
    pub operators_after: usize,
    /// Number of merged projection pairs.
    pub projections_merged: usize,
    /// Number of identity projections removed.
    pub identity_projections_removed: usize,
    /// Number of redundant `ddo` operators removed.
    pub doc_orders_removed: usize,
    /// Number of redundant δ operators removed.
    pub distincts_removed: usize,
    /// Number of operators merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// Number of constant attaches folded into literal tables.
    pub constants_folded: usize,
    /// Number of equi-join clusters rewritten by statistics-driven
    /// reordering (`full` level only).
    pub joins_reordered: usize,
    /// Number of selections pushed below joins or through
    /// π/attach/maps (`full` level only).
    pub predicates_pushed: usize,
    /// Number of operators merged by hash-consed subplan dedup (`full`
    /// level only; supersedes `cse_merged` when enabled).
    pub subplans_deduped: usize,
    /// Number of cheap shared operators cloned after the fixpoint so
    /// pipeline fusion sees single-consumer chains (`full` level only).
    pub chains_unshared: usize,
    /// Number of `IndexScan` candidate filters spliced above axis steps
    /// (`full` level only).
    pub index_scans_introduced: usize,
    /// `true` when the plan verifier ran for this optimization and every
    /// rule application passed ([`crate::verify`]).
    pub verified: bool,
    /// Number of verifier passes run (one for the input plan plus one per
    /// rule application that changed the plan).
    pub verify_passes: usize,
    /// Nanoseconds spent verifying after each rule, indexed like
    /// [`OptimizeReport::RULE_NAMES`].
    pub verify_rule_nanos: [u64; 9],
}

impl OptimizeReport {
    /// Rule names indexing [`OptimizeReport::verify_rule_nanos`] (and
    /// naming rules in [`crate::verify::VerifyError`]).
    pub const RULE_NAMES: [&'static str; 9] = [
        "merge_projections",
        "identity_projections",
        "order_ops",
        "fold_attach",
        "dedup",
        "pushdown",
        "reorder",
        "indexscan",
        "unshare",
    ];

    /// Total nanoseconds spent in the plan verifier.
    pub fn verify_nanos(&self) -> u64 {
        self.verify_rule_nanos.iter().sum()
    }

    /// Fraction of operators removed, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.operators_before == 0 {
            return 0.0;
        }
        100.0 * (self.operators_before - self.operators_after) as f64 / self.operators_before as f64
    }
}

/// Optimize `plan` in place with the basic peephole pass (no statistics
/// needed) and report what happened.  Equivalent to [`optimize_with`] at
/// [`OptimizerLevel::BASIC`].
pub fn optimize(plan: &mut Plan) -> OptimizeReport {
    optimize_with(plan, OptimizerLevel::BASIC, &NoStats)
}

/// Optimize `plan` in place at `level`, using `stats` for cardinality
/// estimates, and report what happened.
///
/// The basic peephole rules always run.  Enabled isolation rules join the
/// fixpoint loop, except *unshare* which runs exactly once afterwards —
/// unshare and dedup are mutual inverses and must never alternate.  When
/// dedup is on, the one-pass hash-consing replaces the fixpoint string
/// CSE (same rewrites, counted in `subplans_deduped`).
pub fn optimize_with(
    plan: &mut Plan,
    level: OptimizerLevel,
    stats: &dyn StatsSource,
) -> OptimizeReport {
    optimize_with_verify(plan, level, stats, default_verify())
}

/// Whether [`optimize_with`] verifies rewrites: always in debug builds,
/// and behind `PF_VERIFY=1` (or the engine's `verify_plans` option,
/// which calls [`optimize_with_verify`] directly) in release.
fn default_verify() -> bool {
    if cfg!(debug_assertions) {
        return true;
    }
    static VERIFY_ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *VERIFY_ENV.get_or_init(|| {
        std::env::var("PF_VERIFY")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false)
    })
}

/// [`optimize_with`] with explicit control over plan verification.
///
/// When `verify` is set, the input plan is checked for structural
/// well-formedness and every rule application that changed the plan is
/// re-checked against the pre-rule [`crate::verify::PlanDigest`]
/// (schema preserved, keys/constants only strengthened).  A rejected
/// rewrite is rolled back to the pre-rule snapshot, panics in debug
/// builds (`debug_assert!`), and clears `report.verified` in release —
/// the query still runs, on the last plan that verified clean.
pub fn optimize_with_verify(
    plan: &mut Plan,
    level: OptimizerLevel,
    stats: &dyn StatsSource,
    verify: bool,
) -> OptimizeReport {
    let mut report = OptimizeReport {
        operators_before: plan.operator_count(),
        ..Default::default()
    };
    let mut failed = false;
    if verify {
        report.verify_passes += 1;
        if let Err(e) = crate::verify::verify_plan(plan) {
            debug_assert!(false, "optimizer input plan is malformed: {e}");
            failed = true;
        }
    }
    // Wraps one rule application: snapshot, run, verify on change, roll
    // back on rejection.  The digest is computed from the snapshot only
    // when the rule actually changed the plan, so an idle fixpoint
    // iteration costs one arena clone and nothing else.
    let run_rule = |plan: &mut Plan,
                    report: &mut OptimizeReport,
                    failed: &mut bool,
                    rule_idx: usize,
                    rule: &mut dyn FnMut(&mut Plan, &mut OptimizeReport) -> bool|
     -> bool {
        if !verify || *failed {
            return rule(plan, report);
        }
        let snapshot = plan.clone();
        if !rule(plan, report) {
            return false;
        }
        let start = std::time::Instant::now();
        let before = crate::verify::digest(&snapshot);
        let outcome =
            crate::verify::verify_rewrite(OptimizeReport::RULE_NAMES[rule_idx], &before, plan);
        report.verify_rule_nanos[rule_idx] += start.elapsed().as_nanos() as u64;
        report.verify_passes += 1;
        match outcome {
            Ok(()) => true,
            Err(e) => {
                debug_assert!(false, "{e}");
                *plan = snapshot;
                *failed = true;
                false
            }
        }
    };
    // Run to a fixpoint; each pass is cheap (linear in plan size).
    loop {
        let mut changed = false;
        changed |= run_rule(plan, &mut report, &mut failed, 0, &mut merge_projections);
        changed |= run_rule(
            plan,
            &mut report,
            &mut failed,
            1,
            &mut remove_identity_projections,
        );
        changed |= run_rule(
            plan,
            &mut report,
            &mut failed,
            2,
            &mut remove_redundant_order_ops,
        );
        changed |= run_rule(plan, &mut report, &mut failed, 3, &mut fold_constant_attach);
        if level.dedup {
            changed |= run_rule(plan, &mut report, &mut failed, 4, &mut dedup::hash_cons);
        } else {
            changed |= run_rule(
                plan,
                &mut report,
                &mut failed,
                4,
                &mut common_subexpressions,
            );
        }
        if level.pushdown {
            changed |= run_rule(
                plan,
                &mut report,
                &mut failed,
                5,
                &mut pushdown::push_selections,
            );
        }
        if level.reorder {
            changed |= run_rule(plan, &mut report, &mut failed, 6, &mut |plan, report| {
                reorder::reorder_join_graphs(plan, stats, report)
            });
        }
        if level.indexscan {
            changed |= run_rule(
                plan,
                &mut report,
                &mut failed,
                7,
                &mut indexscan::introduce_index_scans,
            );
        }
        if !changed {
            break;
        }
    }
    if level.unshare {
        run_rule(plan, &mut report, &mut failed, 8, &mut |plan, report| {
            let before = report.chains_unshared;
            dedup::unshare_fusable_chains(plan, report);
            report.chains_unshared != before
        });
    }
    report.verified = verify && !failed;
    report.operators_after = plan.operator_count();
    report
}

/// Redirect every reference to `from` so that it points to `to`.
pub(crate) fn redirect(plan: &mut Plan, from: OpId, to: OpId) {
    if plan.root() == from {
        plan.set_root(to);
    }
    let n = plan.ops().len();
    for id in 0..n {
        let children = plan.op(id).children();
        for (idx, child) in children.iter().enumerate() {
            if *child == from {
                plan.ops_mut()[id].replace_child(idx, to);
            }
        }
    }
}

/// Rewrite π(π(q)) into a single π with composed column mapping.
fn merge_projections(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    for id in plan.reachable() {
        let AlgOp::Project { input, columns } = plan.op(id).clone() else {
            continue;
        };
        let AlgOp::Project {
            input: inner_input,
            columns: inner_columns,
        } = plan.op(input).clone()
        else {
            continue;
        };
        // Compose: outer (source→target) looks up source in the inner map.
        let inner_map: HashMap<&str, &str> = inner_columns
            .iter()
            .map(|(s, t)| (t.as_str(), s.as_str()))
            .collect();
        let Some(composed) = columns
            .iter()
            .map(|(source, target)| {
                inner_map
                    .get(source.as_str())
                    .map(|orig| (orig.to_string(), target.clone()))
            })
            .collect::<Option<Vec<_>>>()
        else {
            continue;
        };
        plan.ops_mut()[id] = AlgOp::Project {
            input: inner_input,
            columns: composed,
        };
        report.projections_merged += 1;
        changed = true;
    }
    changed
}

/// Remove projections that keep all input columns under unchanged names.
fn remove_identity_projections(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let props = infer_schema(plan);
    let mut changed = false;
    for id in plan.reachable() {
        let AlgOp::Project { input, columns } = plan.op(id) else {
            continue;
        };
        let Some(child_props) = props.get(input) else {
            continue;
        };
        let identity = columns.len() == child_props.columns.len()
            && columns
                .iter()
                .zip(&child_props.columns)
                .all(|((s, t), c)| s == t && s == c);
        if identity {
            let input = *input;
            redirect(plan, id, input);
            report.identity_projections_removed += 1;
            changed = true;
        }
    }
    changed
}

/// Remove `ddo` over already document-ordered inputs and δ over already
/// distinct inputs.
fn remove_redundant_order_ops(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let props = infer_schema(plan);
    let mut changed = false;
    for id in plan.reachable() {
        match plan.op(id) {
            AlgOp::DocOrder { input }
                if props.get(input).map(|p| p.doc_ordered).unwrap_or(false) =>
            {
                let input = *input;
                redirect(plan, id, input);
                report.doc_orders_removed += 1;
                changed = true;
            }
            AlgOp::Distinct { input } if props.get(input).map(|p| p.distinct).unwrap_or(false) => {
                let input = *input;
                redirect(plan, id, input);
                report.distincts_removed += 1;
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Evaluate `Attach` over a literal table at compile time.
fn fold_constant_attach(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    for id in plan.reachable() {
        let AlgOp::Attach {
            input,
            target,
            value,
        } = plan.op(id).clone()
        else {
            continue;
        };
        let AlgOp::Lit { columns, rows } = plan.op(input).clone() else {
            continue;
        };
        let mut new_columns = columns.clone();
        new_columns.push(target.clone());
        let new_rows = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.push(value.clone());
                r
            })
            .collect();
        plan.ops_mut()[id] = AlgOp::Lit {
            columns: new_columns,
            rows: new_rows,
        };
        report.constants_folded += 1;
        changed = true;
    }
    changed
}

/// Merge structurally identical operators (after children have been merged —
/// processing in topological order guarantees this converges).
fn common_subexpressions(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    let mut canonical: HashMap<String, OpId> = HashMap::new();
    for id in plan.reachable() {
        // The Debug representation includes child ids, which at this point
        // already reference canonical representatives.
        let key = format!("{:?}", plan.op(id));
        match canonical.get(&key) {
            Some(&existing) if existing != id => {
                redirect(plan, id, existing);
                report.cse_merged += 1;
                changed = true;
            }
            Some(_) => {}
            None => {
                canonical.insert(key, id);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;
    use pf_store::{Axis, NodeTest};

    fn lit(b: &mut PlanBuilder) -> OpId {
        b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(1)]],
        })
    }

    #[test]
    fn merges_stacked_projections() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let p1 = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "outer".into()),
                ("item".into(), "item".into()),
            ],
        });
        let p2 = b.add(AlgOp::Project {
            input: p1,
            columns: vec![("outer".into(), "iter".into())],
        });
        let mut plan = b.finish(p2);
        let report = optimize(&mut plan);
        assert!(report.projections_merged >= 1);
        // The root is now a single projection straight over the literal.
        match plan.op(plan.root()) {
            AlgOp::Project { input, columns } => {
                assert_eq!(*input, l);
                assert_eq!(columns, &vec![("iter".to_string(), "iter".to_string())]);
            }
            other => panic!("expected projection, found {other:?}"),
        }
    }

    #[test]
    fn removes_identity_projection() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let p = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("pos".into(), "pos".into()),
                ("item".into(), "item".into()),
            ],
        });
        let d = b.add(AlgOp::Distinct { input: p });
        let mut plan = b.finish(d);
        let report = optimize(&mut plan);
        assert_eq!(report.identity_projections_removed, 1);
    }

    #[test]
    fn removes_redundant_doc_order_after_step() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: l,
            axis: Axis::Descendant,
            test: NodeTest::AnyElement,
        });
        let ddo = b.add(AlgOp::DocOrder { input: step });
        let mut plan = b.finish(ddo);
        let report = optimize(&mut plan);
        assert_eq!(report.doc_orders_removed, 1);
        assert_eq!(plan.root(), step);
    }

    #[test]
    fn removes_redundant_distinct() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: l,
            axis: Axis::Child,
            test: NodeTest::AnyNode,
        });
        let d = b.add(AlgOp::Distinct { input: step });
        let mut plan = b.finish(d);
        let report = optimize(&mut plan);
        assert_eq!(report.distincts_removed, 1);
    }

    #[test]
    fn cse_merges_identical_subplans() {
        let mut b = PlanBuilder::new();
        let l1 = lit(&mut b);
        let l2 = lit(&mut b);
        let p1 = b.add(AlgOp::Project {
            input: l1,
            columns: vec![("iter".into(), "iter".into()), ("item".into(), "a".into())],
        });
        let p2 = b.add(AlgOp::Project {
            input: l2,
            columns: vec![("iter".into(), "iter1".into()), ("item".into(), "b".into())],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: p1,
            right: p2,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        let mut plan = b.finish(join);
        let before = plan.operator_count();
        let report = optimize(&mut plan);
        assert!(report.cse_merged >= 1, "duplicate literals should merge");
        assert!(plan.operator_count() < before);
    }

    #[test]
    fn folds_constant_attach_into_literal() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)], vec![Value::Nat(2)]],
        });
        let a = b.add(AlgOp::Attach {
            input: l,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let mut plan = b.finish(a);
        let report = optimize(&mut plan);
        assert_eq!(report.constants_folded, 1);
        match plan.op(plan.root()) {
            AlgOp::Lit { columns, rows } => {
                assert_eq!(columns, &vec!["iter".to_string(), "pos".to_string()]);
                assert_eq!(rows[1], vec![Value::Nat(2), Value::Nat(1)]);
            }
            other => panic!("expected folded literal, found {other:?}"),
        }
    }

    #[test]
    fn optimization_reaches_a_fixpoint_and_shrinks() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let p = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("pos".into(), "pos".into()),
                ("item".into(), "item".into()),
            ],
        });
        let ddo = b.add(AlgOp::DocOrder { input: p });
        let d = b.add(AlgOp::Distinct { input: ddo });
        let mut plan = b.finish(d);
        let report = optimize(&mut plan);
        assert!(report.operators_after <= report.operators_before);
        assert!(report.reduction_percent() >= 0.0);
        // A second run must be a no-op.
        let report2 = optimize(&mut plan);
        assert_eq!(report2.operators_before, report2.operators_after);
    }
}
