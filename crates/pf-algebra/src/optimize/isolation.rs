//! Order-sensitivity analysis: where in the DAG does row order matter?
//!
//! XQuery is an ordered language, but the loop-lifted encoding keeps
//! order in *data* (`iter`/`pos` columns), not in physical row order —
//! mostly.  Serialization stably re-sorts the root by `pos`; axis steps
//! and `ddo` sort-normalize their inputs; `rownum` numbers rows
//! deterministically whenever its sort keys cover a key of its input.
//! Physical row order therefore only matters where a sort-tie, a
//! first-appearance rule or an order-sensitive aggregate could observe
//! it.
//!
//! The inference itself — keys, constants, value provenance, order
//! freedom — lives in the unified property pass of
//! [`crate::properties::PlanProperties`]; [`Isolation`] is the
//! order-analysis view over it, kept as a stable entry point for rules
//! and tests that only need keys and order freedom.
//!
//! Join reordering only fires inside regions where `order_free` holds:
//! there, a join's left-major output order is unobservable and the
//! equi-join cluster is just a bag-semantics join graph.

use std::collections::{BTreeMap, BTreeSet};

use pf_relational::Value;

use crate::plan::{OpId, Plan};
use crate::properties::PlanProperties;

/// Per-operator key sets, constant columns, and order-freedom for one
/// plan — a view over [`PlanProperties`].  Indexed by [`OpId`]; entries
/// for unreachable operators are empty/false.
#[derive(Debug, Clone)]
pub struct Isolation {
    props: PlanProperties,
}

impl Isolation {
    /// Analyze `plan`.
    pub fn analyze(plan: &Plan) -> Isolation {
        Isolation {
            props: PlanProperties::analyze(plan),
        }
    }

    /// `true` if some key of `id`, after removing provably constant
    /// columns, is contained in `cols` — i.e. rows of `id` are distinct
    /// on `cols`.
    pub fn keyed_by(&self, id: OpId, cols: &BTreeSet<String>) -> bool {
        self.props.keyed_by(id, cols)
    }

    /// Whether permuting the rows of `id` is unobservable in the
    /// serialized result.
    pub fn order_free(&self, id: OpId) -> bool {
        self.props.order_free(id)
    }

    /// The inferred key sets of `id` (for tests/diagnostics).
    pub fn keys(&self, id: OpId) -> &[BTreeSet<String>] {
        self.props.keys(id)
    }

    /// The provably constant columns of `id`, with statically known
    /// values where available (for tests/diagnostics).
    pub fn constants(&self, id: OpId) -> &BTreeMap<String, Option<Value>> {
        self.props.constants(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AlgOp;
    use crate::plan::PlanBuilder;
    use pf_relational::ops::AggFunc;
    use pf_relational::Value;
    use pf_store::{Axis, NodeTest};

    fn set(cols: &[&str]) -> BTreeSet<String> {
        cols.iter().map(|c| c.to_string()).collect()
    }

    fn doc_step(b: &mut PlanBuilder, uri: &str) -> OpId {
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(0)]],
        });
        b.add(AlgOp::Step {
            input: l,
            axis: Axis::Descendant,
            test: NodeTest::Element(uri.into()),
        })
    }

    #[test]
    fn step_output_is_keyed_and_constant_iter_shrinks_the_key() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let plan = b.finish(s);
        let iso = Isolation::analyze(&plan);
        // iter is constant (single-iteration literal below), so {pos}
        // alone determines rows.
        assert!(iso.constants(s).contains_key("iter"));
        assert!(iso.keyed_by(s, &set(&["pos"])));
        assert!(iso.keyed_by(s, &set(&["item"])));
        assert!(!iso.keyed_by(s, &BTreeSet::new()));
        // Serialization sorts by pos, which keys the root: order-free.
        assert!(iso.order_free(s));
    }

    #[test]
    fn order_sensitive_aggregate_pins_its_input() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let fd = b.add(AlgOp::FnData { input: s });
        let agg = b.add(AlgOp::Aggregate {
            input: fd,
            group: "iter".into(),
            target: "item".into(),
            func: AggFunc::Sum,
            value: "item".into(),
        });
        // Give the root a pos column so serialization is key-covered.
        let at = b.add(AlgOp::Attach {
            input: agg,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let plan = b.finish(at);
        let iso = Isolation::analyze(&plan);
        assert!(iso.order_free(at));
        assert!(iso.order_free(agg));
        // But everything feeding the Sum is order-pinned.
        assert!(!iso.order_free(fd));
        assert!(!iso.order_free(s));
    }

    #[test]
    fn count_aggregate_keeps_the_region_order_free() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let agg = b.add(AlgOp::Aggregate {
            input: s,
            group: "iter".into(),
            target: "item".into(),
            func: AggFunc::Count,
            value: "item".into(),
        });
        let at = b.add(AlgOp::Attach {
            input: agg,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let plan = b.finish(at);
        let iso = Isolation::analyze(&plan);
        assert!(iso.order_free(s));
    }

    #[test]
    fn rownum_without_covering_keys_pins_its_input() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Int(5)],
                vec![Value::Nat(2), Value::Int(5)],
            ],
        });
        let rn = b.add(AlgOp::RowNum {
            input: l,
            target: "pos".into(),
            order_by: vec![crate::ops::SortSpec {
                column: "item".into(),
                descending: false,
            }],
            partition: None,
        });
        let plan = b.finish(rn);
        let iso = Isolation::analyze(&plan);
        // item does not key the literal (duplicate 5s): numbering order
        // observable.
        assert!(!iso.order_free(l));

        // With a key-covering order_by, the same shape is order-free.
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Int(5)],
                vec![Value::Nat(2), Value::Int(5)],
            ],
        });
        let rn = b.add(AlgOp::RowNum {
            input: l,
            target: "pos".into(),
            order_by: vec![crate::ops::SortSpec {
                column: "iter".into(),
                descending: false,
            }],
            partition: None,
        });
        let plan = b.finish(rn);
        let iso = Isolation::analyze(&plan);
        assert!(iso.order_free(l));
        assert!(iso.keyed_by(rn, &set(&["pos"])));
    }

    #[test]
    fn equijoin_on_keyed_side_preserves_other_side_keys() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let lookup = b.add(AlgOp::Lit {
            columns: vec!["key".into(), "val".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Int(10)],
                vec![Value::Nat(2), Value::Int(20)],
            ],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: s,
            right: lookup,
            left_col: "iter".into(),
            right_col: "key".into(),
        });
        let plan = b.finish(join);
        let iso = Isolation::analyze(&plan);
        // `key` keys the lookup side, so the step's {iter,pos} key
        // survives the join (and iter is still constant).
        assert!(iso.keyed_by(join, &set(&["pos"])));
    }

    #[test]
    fn root_without_pos_column_is_order_pinned() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Int(1)]],
        });
        let plan = b.finish(l);
        let iso = Isolation::analyze(&plan);
        assert!(!iso.order_free(l));
    }

    /// Two branches tagged with different `ord` constants: the union is
    /// keyed by {ord} ∪ (a key per side).
    #[test]
    fn constant_discriminated_union_keeps_a_key() {
        let mut b = PlanBuilder::new();
        let s1 = doc_step(&mut b, "a");
        let s2 = doc_step(&mut b, "b");
        let t1 = b.add(AlgOp::Attach {
            input: s1,
            target: "ord".into(),
            value: Value::Nat(1),
        });
        let t2 = b.add(AlgOp::Attach {
            input: s2,
            target: "ord".into(),
            value: Value::Nat(2),
        });
        let u = b.add(AlgOp::Union {
            left: t1,
            right: t2,
        });
        let plan = b.finish(u);
        let iso = Isolation::analyze(&plan);
        assert!(iso.keyed_by(u, &set(&["ord", "pos"])));
        assert!(!iso.keyed_by(u, &set(&["pos"])));

        // Same ord value on both sides: no discrimination, no key.
        let mut b = PlanBuilder::new();
        let s1 = doc_step(&mut b, "a");
        let s2 = doc_step(&mut b, "b");
        let t1 = b.add(AlgOp::Attach {
            input: s1,
            target: "ord".into(),
            value: Value::Nat(1),
        });
        let t2 = b.add(AlgOp::Attach {
            input: s2,
            target: "ord".into(),
            value: Value::Nat(1),
        });
        let u = b.add(AlgOp::Union {
            left: t1,
            right: t2,
        });
        let plan = b.finish(u);
        let iso = Isolation::analyze(&plan);
        assert!(!iso.keyed_by(u, &set(&["ord", "pos"])));
    }

    /// The compiler's default-branch plumbing: `agg ∪ (all ∖ agg)` on
    /// the iter column.  Provenance proves the sides disjoint, so the
    /// union keeps the {iter} key.
    #[test]
    fn difference_complement_union_keeps_a_key() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        // One row per item: iter column = item ids (a key).
        let all = b.add(AlgOp::Project {
            input: s,
            columns: vec![("item".into(), "iter".into())],
        });
        let agg_in = b.add(AlgOp::SelectEq {
            input: s,
            column: "pos".into(),
            value: Value::Nat(1),
        });
        let agg_iters = b.add(AlgOp::Project {
            input: agg_in,
            columns: vec![("item".into(), "iter".into())],
        });
        let agg = b.add(AlgOp::Aggregate {
            input: agg_iters,
            group: "iter".into(),
            target: "res".into(),
            func: AggFunc::Count,
            value: "iter".into(),
        });
        let hit = b.add(AlgOp::Project {
            input: agg,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("res".into(), "item".into()),
            ],
        });
        // Default branch: iters with no aggregate row.
        let agg_keys = b.add(AlgOp::Project {
            input: agg,
            columns: vec![("iter".into(), "iter".into())],
        });
        let missing = b.add(AlgOp::Difference {
            left: all,
            right: agg_keys,
        });
        let dflt = b.add(AlgOp::Attach {
            input: missing,
            target: "item".into(),
            value: Value::Int(0),
        });
        let u = b.add(AlgOp::Union {
            left: hit,
            right: dflt,
        });
        let plan = b.finish(u);
        let iso = Isolation::analyze(&plan);
        assert!(
            iso.keyed_by(u, &set(&["iter"])),
            "complement union should be keyed on iter; keys = {:?}",
            iso.keys(u)
        );
    }
}
