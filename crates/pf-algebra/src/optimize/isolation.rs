//! Order-sensitivity analysis: where in the DAG does row order matter?
//!
//! XQuery is an ordered language, but the loop-lifted encoding keeps
//! order in *data* (`iter`/`pos` columns), not in physical row order —
//! mostly.  Serialization stably re-sorts the root by `pos`; axis steps
//! and `ddo` sort-normalize their inputs; `rownum` numbers rows
//! deterministically whenever its sort keys cover a key of its input.
//! Physical row order therefore only matters where a sort-tie, a
//! first-appearance rule or an order-sensitive aggregate could observe
//! it.  [`Isolation`] computes, per operator:
//!
//! * **keys** — column sets on which the operator's output rows are
//!   provably distinct (bottom-up);
//! * **constants** — columns provably equal in every output row, with
//!   the value itself when it is statically known (bottom-up; the
//!   top-level `iter ≡ 1` is the important case: it shrinks the
//!   `{iter, pos}` key of a step to `{pos}`, exactly what the
//!   serializer sorts by);
//! * **value provenance** — per column, which upstream (operator,
//!   column) pairs are provable value supersets (and which are provably
//!   *disjoint*, via single-column `Difference`).  This is what lets a
//!   compiler-generated `A ∪ (B ∖ A)` union — the default-branch
//!   plumbing around every aggregate — keep a key: the two sides can
//!   never collide on the discriminating column;
//! * **order_free** — whether permuting this operator's output rows can
//!   change the serialized query result (top-down over consumer edges).
//!
//! Join reordering only fires inside regions where `order_free` holds:
//! there, a join's left-major output order is unobservable and the
//! equi-join cluster is just a bag-semantics join graph.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};
use crate::schema::{infer_schema, Properties};
use pf_relational::ops::AggFunc;
use pf_relational::Value;

/// A value-provenance tag: “the tracked column's values are related to
/// column `.1` of operator `.0`”.
type Tag = (OpId, String);
/// Per-column tag sets for one operator.
type TagMap = BTreeMap<String, BTreeSet<Tag>>;

/// Per-operator key sets, constant columns, value provenance, and
/// order-freedom for one plan.  Indexed by [`OpId`]; entries for
/// unreachable operators are empty/false.
#[derive(Debug, Clone)]
pub struct Isolation {
    /// Column sets on which each operator's rows are provably distinct.
    keys: Vec<Vec<BTreeSet<String>>>,
    /// Columns provably constant across each operator's rows, with the
    /// constant's value when statically known.
    constants: Vec<BTreeMap<String, Option<Value>>>,
    /// `supersets[id][c]` ∋ `t` ⇒ values of `c` at `id` ⊆ values of `t`.
    supersets: Vec<TagMap>,
    /// `equalsets[id][c]` ∋ `t` ⇒ values of `c` at `id` = values of `t`
    /// (as sets).  Always a subset of `supersets[id][c]`.
    equalsets: Vec<TagMap>,
    /// `exclusions[id][c]` ∋ `t` ⇒ values of `c` at `id` are disjoint
    /// from the values of `t`.
    exclusions: Vec<TagMap>,
    /// Whether permuting the operator's output rows is unobservable in
    /// the serialized result.
    order_free: Vec<bool>,
}

/// Rows of a literal are scanned for distinctness/constancy only up to
/// this many rows — larger literals simply get no column keys.
const LIT_SCAN_CAP: usize = 64;

/// Provenance tag sets are truncated to this many entries (keeping the
/// smallest, deterministically) so deep plans stay linear to analyze.
const TAG_CAP: usize = 24;

impl Isolation {
    /// Analyze `plan`.
    pub fn analyze(plan: &Plan) -> Isolation {
        let props = infer_schema(plan);
        let n = plan.ops().len();
        let mut iso = Isolation {
            keys: vec![Vec::new(); n],
            constants: vec![BTreeMap::new(); n],
            supersets: vec![TagMap::new(); n],
            equalsets: vec![TagMap::new(); n],
            exclusions: vec![TagMap::new(); n],
            order_free: vec![true; n],
        };
        let topo = plan.reachable();
        for &id in &topo {
            iso.constants[id] = infer_constants(plan, id, &iso);
            let (sup, eq, excl) = infer_provenance(plan, id, &iso, &props);
            iso.supersets[id] = sup;
            iso.equalsets[id] = eq;
            iso.exclusions[id] = excl;
            iso.keys[id] = infer_keys(plan, id, &iso, &props);
        }
        // Top-down: the root's order matters unless serialization's
        // stable pos-sort fully determines it; every other operator is
        // constrained through its consumer edges, parents first.
        let root = plan.root();
        let pos: BTreeSet<String> = std::iter::once("pos".to_string()).collect();
        iso.order_free[root] = props
            .get(&root)
            .is_some_and(|p| p.columns.iter().any(|c| c == "pos"))
            && iso.keyed_by(root, &pos);
        for &id in topo.iter().rev() {
            let parent_free = iso.order_free[id];
            let children = plan.op(id).children();
            for (slot, &child) in children.iter().enumerate() {
                let edge = edge_order_free(plan.op(id), slot, parent_free, child, &iso);
                iso.order_free[child] &= edge;
            }
        }
        iso
    }

    /// `true` if some key of `id`, after removing provably constant
    /// columns, is contained in `cols` — i.e. rows of `id` are distinct
    /// on `cols`.
    pub fn keyed_by(&self, id: OpId, cols: &BTreeSet<String>) -> bool {
        let constants = &self.constants[id];
        self.keys[id].iter().any(|key| {
            key.iter()
                .all(|c| constants.contains_key(c) || cols.contains(c))
        })
    }

    /// Whether permuting the rows of `id` is unobservable in the
    /// serialized result.
    pub fn order_free(&self, id: OpId) -> bool {
        self.order_free[id]
    }

    /// The inferred key sets of `id` (for tests/diagnostics).
    pub fn keys(&self, id: OpId) -> &[BTreeSet<String>] {
        &self.keys[id]
    }

    /// The provably constant columns of `id`, with statically known
    /// values where available (for tests/diagnostics).
    pub fn constants(&self, id: OpId) -> &BTreeMap<String, Option<Value>> {
        &self.constants[id]
    }

    /// Supersets of column `c` at `id`, including `(id, c)` itself.
    fn supersets_with_self(&self, id: OpId, c: &str) -> BTreeSet<Tag> {
        let mut tags = self.supersets[id].get(c).cloned().unwrap_or_default();
        tags.insert((id, c.to_string()));
        tags
    }
}

fn set(cols: &[&str]) -> BTreeSet<String> {
    cols.iter().map(|c| c.to_string()).collect()
}

fn cap(tags: BTreeSet<Tag>) -> BTreeSet<Tag> {
    if tags.len() <= TAG_CAP {
        tags
    } else {
        tags.into_iter().take(TAG_CAP).collect()
    }
}

/// Tag set of `(input, src)` extended with the input's own tags from
/// `maps[input][src]`.
fn inherit(maps: &[TagMap], input: OpId, src: &str, include_self: bool) -> BTreeSet<Tag> {
    let mut tags = maps[input].get(src).cloned().unwrap_or_default();
    if include_self {
        tags.insert((input, src.to_string()));
    }
    cap(tags)
}

/// Value-provenance inference for one operator: `(supersets, equalsets,
/// exclusions)`.  Soundness contract per relation is documented on
/// [`Isolation`]'s fields; every arm below must only record relations
/// that hold for the operator's actual value semantics.
fn infer_provenance(
    plan: &Plan,
    id: OpId,
    iso: &Isolation,
    props: &HashMap<OpId, Properties>,
) -> (TagMap, TagMap, TagMap) {
    let mut sup = TagMap::new();
    let mut eq = TagMap::new();
    let mut excl = TagMap::new();
    // Row-preserving rename: `tgt` takes exactly the values `src` had.
    let exact = |sup: &mut TagMap,
                 eq: &mut TagMap,
                 excl: &mut TagMap,
                 input: OpId,
                 src: &str,
                 tgt: &str| {
        sup.insert(tgt.into(), inherit(&iso.supersets, input, src, true));
        eq.insert(tgt.into(), inherit(&iso.equalsets, input, src, true));
        excl.insert(tgt.into(), inherit(&iso.exclusions, input, src, false));
    };
    // Row subset: values shrink — supersets and exclusions carry, set
    // equality does not.
    let subset = |sup: &mut TagMap, excl: &mut TagMap, input: OpId, src: &str, tgt: &str| {
        sup.insert(tgt.into(), inherit(&iso.supersets, input, src, true));
        excl.insert(tgt.into(), inherit(&iso.exclusions, input, src, false));
    };
    let cols = |of: OpId| -> Vec<String> {
        props
            .get(&of)
            .map(|p| p.columns.clone())
            .unwrap_or_default()
    };
    match plan.op(id) {
        AlgOp::Lit { .. } | AlgOp::Doc { .. } => {}
        AlgOp::Project { input, columns } => {
            for (src, tgt) in columns {
                exact(&mut sup, &mut eq, &mut excl, *input, src, tgt);
            }
        }
        // Full-row dedup / re-sort preserves every column's value set.
        AlgOp::Sort { input, .. } | AlgOp::Distinct { input } | AlgOp::DocOrder { input } => {
            for c in cols(*input) {
                exact(&mut sup, &mut eq, &mut excl, *input, &c, &c);
            }
        }
        AlgOp::Select { input, .. }
        | AlgOp::SelectEq { input, .. }
        | AlgOp::IndexScan { input, .. } => {
            for c in cols(*input) {
                subset(&mut sup, &mut excl, *input, &c, &c);
            }
        }
        // Row-preserving column adders: every pre-existing column keeps
        // its exact value multiset; the new column is fresh.
        AlgOp::Attach { input, target, .. }
        | AlgOp::RowNum { input, target, .. }
        | AlgOp::UnaryMap { input, target, .. }
        | AlgOp::BinaryMap { input, target, .. } => {
            for c in cols(*input) {
                if c != *target {
                    exact(&mut sup, &mut eq, &mut excl, *input, &c, &c);
                }
            }
        }
        // fn:data / fn:root rewrite `item`; other columns ride along
        // row-preserved.
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => {
            for c in cols(*input) {
                if c != "item" {
                    exact(&mut sup, &mut eq, &mut excl, *input, &c, &c);
                }
            }
        }
        // The distinct group values survive exactly; the aggregate
        // target is fresh.
        AlgOp::Aggregate { input, group, .. } => {
            exact(&mut sup, &mut eq, &mut excl, *input, group, group);
        }
        // Steps emit a subset of the input iterations; item/pos are
        // fresh node/position values.
        AlgOp::Step { input, .. } | AlgOp::Ebv { input } => {
            subset(&mut sup, &mut excl, *input, "iter", "iter");
        }
        AlgOp::EquiJoin {
            left,
            right,
            left_col,
            right_col,
        } => {
            for c in cols(*left) {
                subset(&mut sup, &mut excl, *left, &c, &c);
            }
            for c in cols(*right) {
                subset(&mut sup, &mut excl, *right, &c, &c);
            }
            // Matched join columns take values present on *both* sides.
            let lc = sup.entry(left_col.clone()).or_default();
            lc.extend(inherit(&iso.supersets, *right, right_col, true));
            let lc = cap(std::mem::take(lc));
            sup.insert(left_col.clone(), lc);
            let rc = sup.entry(right_col.clone()).or_default();
            rc.extend(inherit(&iso.supersets, *left, left_col, true));
            let rc = cap(std::mem::take(rc));
            sup.insert(right_col.clone(), rc);
        }
        AlgOp::ThetaJoin { left, right, .. } | AlgOp::Cross { left, right } => {
            for c in cols(*left) {
                subset(&mut sup, &mut excl, *left, &c, &c);
            }
            for c in cols(*right) {
                subset(&mut sup, &mut excl, *right, &c, &c);
            }
        }
        // A union row comes from either side: only relations that hold
        // on both survive; a tag equal to both sides equals the union.
        AlgOp::Union { left, right } => {
            for c in cols(id) {
                let meet = |maps: &[TagMap]| -> BTreeSet<Tag> {
                    let l = maps[*left].get(&c).cloned().unwrap_or_default();
                    let r = maps[*right].get(&c).cloned().unwrap_or_default();
                    l.intersection(&r).cloned().collect()
                };
                sup.insert(c.clone(), meet(&iso.supersets));
                eq.insert(c.clone(), meet(&iso.equalsets));
                excl.insert(c.clone(), meet(&iso.exclusions));
            }
        }
        AlgOp::Difference { left, right } => {
            for c in cols(id) {
                subset(&mut sup, &mut excl, *left, &c, &c);
            }
            // A single-column difference is a set complement: its values
            // are disjoint from the right side — and from anything whose
            // value set *equals* the right side's.
            let out = cols(id);
            if let [c] = out.as_slice() {
                let entry = excl.entry(c.clone()).or_default();
                entry.extend(inherit(&iso.equalsets, *right, c, true));
                let capped = cap(std::mem::take(entry));
                excl.insert(c.clone(), capped);
            }
        }
        // One output row per loop row; iter values survive exactly, the
        // item (fresh node ids) does not.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => {
            exact(&mut sup, &mut eq, &mut excl, *loop_input, "iter", "iter");
        }
    }
    (sup, eq, excl)
}

fn infer_keys(
    plan: &Plan,
    id: OpId,
    iso: &Isolation,
    props: &HashMap<OpId, Properties>,
) -> Vec<BTreeSet<String>> {
    match plan.op(id) {
        AlgOp::Lit { columns, rows } => {
            if rows.len() <= 1 {
                return vec![BTreeSet::new()];
            }
            if rows.len() > LIT_SCAN_CAP {
                return Vec::new();
            }
            let mut keys = Vec::new();
            for (idx, col) in columns.iter().enumerate() {
                let mut seen: Vec<&Value> = Vec::with_capacity(rows.len());
                let distinct = rows.iter().all(|r| {
                    let v = &r[idx];
                    if seen.contains(&v) {
                        false
                    } else {
                        seen.push(v);
                        true
                    }
                });
                if distinct {
                    keys.push(set(&[col]));
                }
            }
            keys
        }
        AlgOp::Doc { .. } => vec![BTreeSet::new()],
        AlgOp::Project { input, columns } => {
            let mut renamed = Vec::new();
            for key in &iso.keys[*input] {
                // A source column the projection drops kills the key —
                // unless it is constant at the input, in which case it
                // never contributed to distinctness anyway.
                let mapped: Option<BTreeSet<String>> = key
                    .iter()
                    .filter(|source| {
                        columns.iter().any(|(s, _)| s == *source)
                            || !iso.constants[*input].contains_key(*source)
                    })
                    .map(|source| {
                        columns
                            .iter()
                            .find(|(s, _)| s == source)
                            .map(|(_, t)| t.clone())
                    })
                    .collect();
                if let Some(mapped) = mapped {
                    renamed.push(mapped);
                }
            }
            renamed
        }
        // Row subsets keep distinctness.
        AlgOp::Select { input, .. }
        | AlgOp::SelectEq { input, .. }
        | AlgOp::IndexScan { input, .. }
        | AlgOp::Difference { left: input, .. } => iso.keys[*input].clone(),
        // Row-preserving operators keep existing keys (they only add or
        // reorder columns / rows).
        AlgOp::Sort { input, .. }
        | AlgOp::Attach { input, .. }
        | AlgOp::UnaryMap { input, .. }
        | AlgOp::BinaryMap { input, .. } => iso.keys[*input].clone(),
        AlgOp::Distinct { input } => {
            let mut keys = iso.keys[*input].clone();
            if let Some(p) = props.get(&id) {
                keys.push(p.columns.iter().cloned().collect());
            }
            keys
        }
        AlgOp::EquiJoin {
            left,
            right,
            left_col,
            right_col,
        } => {
            let mut keys = Vec::new();
            // A pair of keys, one per side, keys the concatenated rows.
            for kl in &iso.keys[*left] {
                for kr in &iso.keys[*right] {
                    keys.push(kl.union(kr).cloned().collect());
                }
            }
            // If the join column keys one side, every row of the other
            // side matches at most once, so that side's keys survive.
            let rc = std::iter::once(right_col.clone()).collect();
            if iso.keyed_by(*right, &rc) {
                keys.extend(iso.keys[*left].iter().cloned());
            }
            let lc = std::iter::once(left_col.clone()).collect();
            if iso.keyed_by(*left, &lc) {
                keys.extend(iso.keys[*right].iter().cloned());
            }
            keys
        }
        AlgOp::ThetaJoin { left, right, .. } | AlgOp::Cross { left, right } => {
            let mut keys = Vec::new();
            for kl in &iso.keys[*left] {
                for kr in &iso.keys[*right] {
                    keys.push(kl.union(kr).cloned().collect());
                }
            }
            keys
        }
        AlgOp::RowNum {
            input,
            target,
            partition,
            ..
        } => {
            let mut keys = iso.keys[*input].clone();
            let mut numbered = BTreeSet::new();
            if let Some(p) = partition {
                numbered.insert(p.clone());
            }
            numbered.insert(target.clone());
            keys.push(numbered);
            keys
        }
        AlgOp::Aggregate { group, .. } => vec![std::iter::once(group.clone()).collect()],
        // Steps and ddo sort + dedup on (iter, item) and renumber pos
        // within iter: both (iter, pos) and (iter, item) key the output.
        AlgOp::Step { .. } | AlgOp::DocOrder { .. } => {
            vec![set(&["iter", "pos"]), set(&["iter", "item"])]
        }
        AlgOp::Ebv { .. } => vec![set(&["iter"])],
        // fn:data / fn:root rewrite the item column, which can collapse
        // distinct items; keys not involving `item` survive.
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => iso.keys[*input]
            .iter()
            .filter(|k| !k.contains("item"))
            .cloned()
            .collect(),
        // A union generally loses all keys — unless some column provably
        // *discriminates* the sides (rows from different sides always
        // differ on it).  Then that column plus one key per side is a
        // key of the whole union.  Two discriminator proofs:
        //   (a) the column is constant on both sides with different
        //       known values (the `ord`-tag plumbing around unions);
        //   (b) value provenance shows the sides are disjoint on it (the
        //       `A ∪ (B ∖ A)` default-branch plumbing).
        AlgOp::Union { left, right } => {
            let Some(p) = props.get(&id) else {
                return Vec::new();
            };
            let mut discriminators: BTreeSet<String> = BTreeSet::new();
            for c in &p.columns {
                let known = |side: OpId| iso.constants[side].get(c).cloned().flatten();
                if let (Some(va), Some(vb)) = (known(*left), known(*right)) {
                    if va != vb {
                        discriminators.insert(c.clone());
                        continue;
                    }
                }
                let disjoint = |a: OpId, b: OpId| {
                    let sup = iso.supersets_with_self(a, c);
                    iso.exclusions[b]
                        .get(c)
                        .is_some_and(|x| !sup.is_disjoint(x))
                };
                if disjoint(*left, *right) || disjoint(*right, *left) {
                    discriminators.insert(c.clone());
                }
            }
            let mut keys = Vec::new();
            for c in &discriminators {
                for kl in &iso.keys[*left] {
                    for kr in &iso.keys[*right] {
                        let mut key: BTreeSet<String> = kl.union(kr).cloned().collect();
                        key.insert(c.clone());
                        if !keys.contains(&key) {
                            keys.push(key);
                        }
                    }
                }
            }
            keys
        }
        // One output row per loop row, each carrying a fresh node id.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => {
            let mut keys = vec![set(&["item"])];
            let iter = set(&["iter"]);
            if iso.keyed_by(*loop_input, &iter) {
                keys.push(iter);
            }
            keys
        }
    }
}

fn infer_constants(plan: &Plan, id: OpId, iso: &Isolation) -> BTreeMap<String, Option<Value>> {
    match plan.op(id) {
        AlgOp::Lit { columns, rows } => {
            if rows.is_empty() {
                return columns.iter().map(|c| (c.clone(), None)).collect();
            }
            if rows.len() > LIT_SCAN_CAP {
                return BTreeMap::new();
            }
            columns
                .iter()
                .enumerate()
                .filter(|(idx, _)| rows.iter().all(|r| r[*idx] == rows[0][*idx]))
                .map(|(idx, c)| (c.clone(), Some(rows[0][idx].clone())))
                .collect()
        }
        // One row per document root: iter/pos constant, values opaque.
        AlgOp::Doc { .. } => [("iter".to_string(), None), ("pos".to_string(), None)]
            .into_iter()
            .collect(),
        AlgOp::Project { input, columns } => columns
            .iter()
            .filter_map(|(s, t)| iso.constants[*input].get(s).map(|v| (t.clone(), v.clone())))
            .collect(),
        // Survivors all carry `true` / the matched constant in `column`.
        AlgOp::Select { input, column } => {
            let mut c = iso.constants[*input].clone();
            c.insert(column.clone(), Some(Value::Bool(true)));
            c
        }
        AlgOp::SelectEq {
            input,
            column,
            value,
        } => {
            let mut c = iso.constants[*input].clone();
            c.insert(column.clone(), Some(value.clone()));
            c
        }
        // Row subsets / reorders keep every constant column constant.
        AlgOp::Sort { input, .. } | AlgOp::Distinct { input } | AlgOp::IndexScan { input, .. } => {
            iso.constants[*input].clone()
        }
        AlgOp::Attach {
            input,
            target,
            value,
        } => {
            let mut c = iso.constants[*input].clone();
            c.insert(target.clone(), Some(value.clone()));
            c
        }
        AlgOp::UnaryMap { input, target, .. } | AlgOp::BinaryMap { input, target, .. } => {
            let mut c = iso.constants[*input].clone();
            c.remove(target);
            c
        }
        AlgOp::RowNum { input, target, .. } => {
            let mut c = iso.constants[*input].clone();
            c.remove(target);
            c
        }
        AlgOp::EquiJoin { left, right, .. }
        | AlgOp::ThetaJoin { left, right, .. }
        | AlgOp::Cross { left, right } => {
            let mut c = iso.constants[*left].clone();
            for (col, v) in &iso.constants[*right] {
                c.entry(col.clone()).or_insert_with(|| v.clone());
            }
            c
        }
        // A column constant on both sides with the same known value is
        // still constant after concatenation.
        AlgOp::Union { left, right } => {
            let mut c = BTreeMap::new();
            for (col, v) in &iso.constants[*left] {
                let (Some(va), Some(Some(vb))) = (v, iso.constants[*right].get(col)) else {
                    continue;
                };
                if va == vb {
                    c.insert(col.clone(), Some(va.clone()));
                }
            }
            c
        }
        AlgOp::Difference { left, .. } => iso.constants[*left].clone(),
        AlgOp::Aggregate { input, group, .. } => {
            let mut c = BTreeMap::new();
            if let Some(v) = iso.constants[*input].get(group) {
                c.insert(group.clone(), v.clone());
            }
            c
        }
        AlgOp::Step { input, .. } | AlgOp::Ebv { input } => {
            let mut c = BTreeMap::new();
            if let Some(v) = iso.constants[*input].get("iter") {
                c.insert("iter".to_string(), v.clone());
            }
            c
        }
        AlgOp::DocOrder { input } => {
            let mut c = BTreeMap::new();
            for col in ["iter", "item"] {
                if let Some(v) = iso.constants[*input].get(col) {
                    c.insert(col.to_string(), v.clone());
                }
            }
            c
        }
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => {
            let mut c = iso.constants[*input].clone();
            // The item column is rewritten: still constant when the
            // input item was (same node ⇒ same atomization), but the
            // value is no longer statically known.
            if let Some(v) = c.get_mut("item") {
                *v = None;
            }
            c
        }
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => {
            let mut c = BTreeMap::new();
            if iso.constants[*loop_input].contains_key("iter") {
                c.insert("iter".to_string(), None);
            }
            c
        }
    }
}

/// Can permuting the rows of `child` (child slot `slot` of `parent_op`)
/// change the observable result, given that permuting the *parent's*
/// output rows is (`parent_free`) or is not observable?
fn edge_order_free(
    parent_op: &AlgOp,
    slot: usize,
    parent_free: bool,
    child: OpId,
    iso: &Isolation,
) -> bool {
    match parent_op {
        // Steps and ddo sort-normalize their input: any input order
        // yields the identical output table.
        AlgOp::Step { .. } | AlgOp::DocOrder { .. } => true,
        // A sort whose keys cover a key of the input is fully
        // deterministic; otherwise stable tie-breaking passes the input
        // order through.
        AlgOp::Sort { by, .. } => {
            let cols: BTreeSet<String> = by.iter().map(|s| s.column.clone()).collect();
            if iso.keyed_by(child, &cols) {
                true
            } else {
                parent_free
            }
        }
        // Rownum numbers rows in (order_by, input-order) sequence within
        // each partition: deterministic content iff the sort keys cover
        // a key; the output *order* still follows the input.
        AlgOp::RowNum {
            order_by,
            partition,
            ..
        } => {
            let mut cols: BTreeSet<String> = order_by.iter().map(|s| s.column.clone()).collect();
            if let Some(p) = partition {
                cols.insert(p.clone());
            }
            if iso.keyed_by(child, &cols) {
                parent_free
            } else {
                false
            }
        }
        // Count is order-insensitive; Sum/Avg accumulate floats in row
        // order, Min/Max keep the first of equal-comparing values —
        // both can observe the input order.
        AlgOp::Aggregate { func, .. } => match func {
            AggFunc::Count => parent_free,
            _ => false,
        },
        // Constructors assign node ids and gather content in row order.
        // The loop side is safe when its rows are keyed on iter (ids
        // then permute with the rows, and serialization re-sorts);
        // content is safe when (iter, pos) keys it, because the content
        // index re-sorts stably by pos within iter.
        AlgOp::ElemConstruct { .. } | AlgOp::AttrConstruct { .. } | AlgOp::TextConstruct { .. } => {
            if slot == 0 {
                if iso.keyed_by(child, &set(&["iter"])) {
                    parent_free
                } else {
                    false
                }
            } else {
                iso.keyed_by(child, &set(&["iter", "pos"]))
            }
        }
        // The right side of a difference is only probed, never emitted.
        AlgOp::Difference { .. } if slot == 1 => true,
        // Everything else is row-order passthrough: permuting the input
        // permutes the output without changing its contents (selects,
        // maps, projections, joins' left-major nesting, union's
        // concatenation, distinct's first-of-identical-rows, ebv).
        _ => parent_free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;
    use pf_store::{Axis, NodeTest};

    fn doc_step(b: &mut PlanBuilder, uri: &str) -> OpId {
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(0)]],
        });
        b.add(AlgOp::Step {
            input: l,
            axis: Axis::Descendant,
            test: NodeTest::Element(uri.into()),
        })
    }

    #[test]
    fn step_output_is_keyed_and_constant_iter_shrinks_the_key() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let plan = b.finish(s);
        let iso = Isolation::analyze(&plan);
        // iter is constant (single-iteration literal below), so {pos}
        // alone determines rows.
        assert!(iso.constants(s).contains_key("iter"));
        assert!(iso.keyed_by(s, &set(&["pos"])));
        assert!(iso.keyed_by(s, &set(&["item"])));
        assert!(!iso.keyed_by(s, &BTreeSet::new()));
        // Serialization sorts by pos, which keys the root: order-free.
        assert!(iso.order_free(s));
    }

    #[test]
    fn order_sensitive_aggregate_pins_its_input() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let fd = b.add(AlgOp::FnData { input: s });
        let agg = b.add(AlgOp::Aggregate {
            input: fd,
            group: "iter".into(),
            target: "item".into(),
            func: AggFunc::Sum,
            value: "item".into(),
        });
        // Give the root a pos column so serialization is key-covered.
        let at = b.add(AlgOp::Attach {
            input: agg,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let plan = b.finish(at);
        let iso = Isolation::analyze(&plan);
        assert!(iso.order_free(at));
        assert!(iso.order_free(agg));
        // But everything feeding the Sum is order-pinned.
        assert!(!iso.order_free(fd));
        assert!(!iso.order_free(s));
    }

    #[test]
    fn count_aggregate_keeps_the_region_order_free() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let agg = b.add(AlgOp::Aggregate {
            input: s,
            group: "iter".into(),
            target: "item".into(),
            func: AggFunc::Count,
            value: "item".into(),
        });
        let at = b.add(AlgOp::Attach {
            input: agg,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let plan = b.finish(at);
        let iso = Isolation::analyze(&plan);
        assert!(iso.order_free(s));
    }

    #[test]
    fn rownum_without_covering_keys_pins_its_input() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Int(5)],
                vec![Value::Nat(2), Value::Int(5)],
            ],
        });
        let rn = b.add(AlgOp::RowNum {
            input: l,
            target: "pos".into(),
            order_by: vec![crate::ops::SortSpec {
                column: "item".into(),
                descending: false,
            }],
            partition: None,
        });
        let plan = b.finish(rn);
        let iso = Isolation::analyze(&plan);
        // item does not key the literal (duplicate 5s): numbering order
        // observable.
        assert!(!iso.order_free(l));

        // With a key-covering order_by, the same shape is order-free.
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Int(5)],
                vec![Value::Nat(2), Value::Int(5)],
            ],
        });
        let rn = b.add(AlgOp::RowNum {
            input: l,
            target: "pos".into(),
            order_by: vec![crate::ops::SortSpec {
                column: "iter".into(),
                descending: false,
            }],
            partition: None,
        });
        let plan = b.finish(rn);
        let iso = Isolation::analyze(&plan);
        assert!(iso.order_free(l));
        assert!(iso.keyed_by(rn, &set(&["pos"])));
    }

    #[test]
    fn equijoin_on_keyed_side_preserves_other_side_keys() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        let lookup = b.add(AlgOp::Lit {
            columns: vec!["key".into(), "val".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Int(10)],
                vec![Value::Nat(2), Value::Int(20)],
            ],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: s,
            right: lookup,
            left_col: "iter".into(),
            right_col: "key".into(),
        });
        let plan = b.finish(join);
        let iso = Isolation::analyze(&plan);
        // `key` keys the lookup side, so the step's {iter,pos} key
        // survives the join (and iter is still constant).
        assert!(iso.keyed_by(join, &set(&["pos"])));
    }

    #[test]
    fn root_without_pos_column_is_order_pinned() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Int(1)]],
        });
        let plan = b.finish(l);
        let iso = Isolation::analyze(&plan);
        assert!(!iso.order_free(l));
    }

    /// Two branches tagged with different `ord` constants: the union is
    /// keyed by {ord} ∪ (a key per side).
    #[test]
    fn constant_discriminated_union_keeps_a_key() {
        let mut b = PlanBuilder::new();
        let s1 = doc_step(&mut b, "a");
        let s2 = doc_step(&mut b, "b");
        let t1 = b.add(AlgOp::Attach {
            input: s1,
            target: "ord".into(),
            value: Value::Nat(1),
        });
        let t2 = b.add(AlgOp::Attach {
            input: s2,
            target: "ord".into(),
            value: Value::Nat(2),
        });
        let u = b.add(AlgOp::Union {
            left: t1,
            right: t2,
        });
        let plan = b.finish(u);
        let iso = Isolation::analyze(&plan);
        assert!(iso.keyed_by(u, &set(&["ord", "pos"])));
        assert!(!iso.keyed_by(u, &set(&["pos"])));

        // Same ord value on both sides: no discrimination, no key.
        let mut b = PlanBuilder::new();
        let s1 = doc_step(&mut b, "a");
        let s2 = doc_step(&mut b, "b");
        let t1 = b.add(AlgOp::Attach {
            input: s1,
            target: "ord".into(),
            value: Value::Nat(1),
        });
        let t2 = b.add(AlgOp::Attach {
            input: s2,
            target: "ord".into(),
            value: Value::Nat(1),
        });
        let u = b.add(AlgOp::Union {
            left: t1,
            right: t2,
        });
        let plan = b.finish(u);
        let iso = Isolation::analyze(&plan);
        assert!(!iso.keyed_by(u, &set(&["ord", "pos"])));
    }

    /// The compiler's default-branch plumbing: `agg ∪ (all ∖ agg)` on
    /// the iter column.  Provenance proves the sides disjoint, so the
    /// union keeps the {iter} key.
    #[test]
    fn difference_complement_union_keeps_a_key() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "a");
        // One row per item: iter column = item ids (a key).
        let all = b.add(AlgOp::Project {
            input: s,
            columns: vec![("item".into(), "iter".into())],
        });
        let agg_in = b.add(AlgOp::SelectEq {
            input: s,
            column: "pos".into(),
            value: Value::Nat(1),
        });
        let agg_iters = b.add(AlgOp::Project {
            input: agg_in,
            columns: vec![("item".into(), "iter".into())],
        });
        let agg = b.add(AlgOp::Aggregate {
            input: agg_iters,
            group: "iter".into(),
            target: "res".into(),
            func: AggFunc::Count,
            value: "iter".into(),
        });
        let hit = b.add(AlgOp::Project {
            input: agg,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("res".into(), "item".into()),
            ],
        });
        // Default branch: iters with no aggregate row.
        let agg_keys = b.add(AlgOp::Project {
            input: agg,
            columns: vec![("iter".into(), "iter".into())],
        });
        let missing = b.add(AlgOp::Difference {
            left: all,
            right: agg_keys,
        });
        let dflt = b.add(AlgOp::Attach {
            input: missing,
            target: "item".into(),
            value: Value::Int(0),
        });
        let u = b.add(AlgOp::Union {
            left: hit,
            right: dflt,
        });
        let plan = b.finish(u);
        let iso = Isolation::analyze(&plan);
        assert!(
            iso.keyed_by(u, &set(&["iter"])),
            "complement union should be keyed on iter; keys = {:?}",
            iso.keys(u)
        );
    }
}
