//! Selection pushdown and literal folding.
//!
//! Selections (σ, both the boolean [`AlgOp::Select`] and the equality
//! [`AlgOp::SelectEq`]) are pushed toward the leaves: through
//! projections (renaming the predicate column back), attach and value
//! maps (when they do not compute the predicate column), below joins
//! (onto the side that owns the column), through δ, into both branches
//! of a union and into the left side of a difference.  Every rewrite
//! here preserves the *exact* row order of every operator's output —
//! selections are row-subset operators and all the hosts are
//! row-order-preserving — so unlike join reordering, pushdown needs no
//! order-freedom analysis and is safe anywhere in the DAG.
//!
//! σ/π over literal tables are additionally evaluated at compile time
//! (counted in `constants_folded`, like the existing attach folding).
//! `select_true` raises a type error on non-boolean values at runtime,
//! so the boolean σ only folds when every value in the column is a
//! boolean; the equality σ never errors and folds unconditionally.

use super::OptimizeReport;
use crate::ops::AlgOp;
use crate::plan::Plan;
use crate::schema::infer_schema;
use pf_relational::Value;

/// Largest literal table the folds will copy.
const LIT_FOLD_CAP: usize = 64;

/// Push selections down and fold σ/π over literals until nothing moves.
/// Returns `true` if the plan changed.
pub fn push_selections(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut changed = false;
    while push_one(plan, report) || fold_one(plan, report) {
        changed = true;
    }
    changed
}

/// Apply the first applicable push; `true` if one fired.
fn push_one(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let consumers = plan.consumer_counts();
    let props = infer_schema(plan);
    for id in plan.reachable() {
        let (input, column) = match plan.op(id) {
            AlgOp::Select { input, column } | AlgOp::SelectEq { input, column, .. } => {
                (*input, column.clone())
            }
            _ => continue,
        };
        // Only rewrite below exclusively-owned children: pushing under a
        // shared operator would either duplicate its work or filter rows
        // its other consumers still need.
        if consumers[input] != 1 {
            continue;
        }
        // `sigma(new_input)`: the current σ re-targeted at `new_input`.
        let sigma = |plan: &mut Plan, sel_id: usize, new_input: usize| -> usize {
            let mut op = plan.op(sel_id).clone();
            op.replace_child(0, new_input);
            plan.ops_mut().push(op);
            plan.ops_mut().len() - 1
        };
        match plan.op(input).clone() {
            AlgOp::Project { input: x, columns } => {
                // Rename the predicate column back to its source name.
                let Some((source, _)) = columns.iter().find(|(_, t)| *t == column) else {
                    continue;
                };
                let source = source.clone();
                let pushed = sigma(plan, id, x);
                match &mut plan.ops_mut()[pushed] {
                    AlgOp::Select { column, .. } | AlgOp::SelectEq { column, .. } => {
                        *column = source;
                    }
                    _ => unreachable!(),
                }
                plan.ops_mut()[id] = AlgOp::Project {
                    input: pushed,
                    columns,
                };
            }
            AlgOp::Attach {
                input: x,
                target,
                value,
            } => {
                if target == column {
                    continue;
                }
                let pushed = sigma(plan, id, x);
                plan.ops_mut()[id] = AlgOp::Attach {
                    input: pushed,
                    target,
                    value,
                };
            }
            AlgOp::UnaryMap {
                input: x,
                target,
                op,
                source,
            } => {
                if target == column {
                    continue;
                }
                let pushed = sigma(plan, id, x);
                plan.ops_mut()[id] = AlgOp::UnaryMap {
                    input: pushed,
                    target,
                    op,
                    source,
                };
            }
            AlgOp::BinaryMap {
                input: x,
                target,
                left,
                op,
                right,
            } => {
                if target == column {
                    continue;
                }
                let pushed = sigma(plan, id, x);
                plan.ops_mut()[id] = AlgOp::BinaryMap {
                    input: pushed,
                    target,
                    left,
                    op,
                    right,
                };
            }
            AlgOp::Distinct { input: x } => {
                // Duplicates are whole-row, so filtering commutes with δ
                // (and keeps the same first occurrences).
                let pushed = sigma(plan, id, x);
                plan.ops_mut()[id] = AlgOp::Distinct { input: pushed };
            }
            AlgOp::Union { left, right } => {
                let sl = sigma(plan, id, left);
                let sr = sigma(plan, id, right);
                plan.ops_mut()[id] = AlgOp::Union {
                    left: sl,
                    right: sr,
                };
            }
            AlgOp::Difference { left, right } => {
                // σ(L − R) = σ(L) − R: the filter only concerns emitted
                // (left) rows.
                let pushed = sigma(plan, id, left);
                plan.ops_mut()[id] = AlgOp::Difference {
                    left: pushed,
                    right,
                };
            }
            join @ (AlgOp::EquiJoin { .. } | AlgOp::ThetaJoin { .. } | AlgOp::Cross { .. }) => {
                let (left, right) = match &join {
                    AlgOp::EquiJoin { left, right, .. }
                    | AlgOp::ThetaJoin { left, right, .. }
                    | AlgOp::Cross { left, right } => (*left, *right),
                    _ => unreachable!(),
                };
                let owns = |side: usize| {
                    props
                        .get(&side)
                        .is_some_and(|p| p.columns.contains(&column))
                };
                // The column must belong to exactly one side (a self-join
                // with colliding names is ambiguous — bail).
                let (push_left, push_right) = (owns(left), owns(right));
                if push_left == push_right {
                    continue;
                }
                let mut new_join = join;
                if push_left {
                    let pushed = sigma(plan, id, left);
                    new_join.replace_child(0, pushed);
                } else {
                    let pushed = sigma(plan, id, right);
                    new_join.replace_child(1, pushed);
                }
                plan.ops_mut()[id] = new_join;
            }
            _ => continue,
        }
        report.predicates_pushed += 1;
        return true;
    }
    false
}

/// A row predicate compiled from a σ/σ= operator.
type KeepFn = Box<dyn Fn(&[Value]) -> bool>;

/// Evaluate one σ or π over a literal table; `true` if one fired.
fn fold_one(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    for id in plan.reachable() {
        let (input, keep): (usize, KeepFn) = match plan.op(id).clone() {
            AlgOp::SelectEq {
                input,
                column,
                value,
            } => {
                let Some(idx) = lit_column(plan, input, &column) else {
                    continue;
                };
                (input, Box::new(move |row: &[Value]| row[idx] == value))
            }
            AlgOp::Select { input, column } => {
                let Some(idx) = lit_column(plan, input, &column) else {
                    continue;
                };
                // select_true errors on non-booleans; only fold when the
                // whole column is boolean so behaviour cannot change.
                let AlgOp::Lit { rows, .. } = plan.op(input) else {
                    continue;
                };
                if !rows.iter().all(|r| matches!(r[idx], Value::Bool(_))) {
                    continue;
                }
                (
                    input,
                    Box::new(move |row: &[Value]| row[idx] == Value::Bool(true)),
                )
            }
            AlgOp::Project { input, columns } => {
                let AlgOp::Lit {
                    columns: lit_cols,
                    rows,
                } = plan.op(input)
                else {
                    continue;
                };
                if rows.len() > LIT_FOLD_CAP {
                    continue;
                }
                let Some(indices) = columns
                    .iter()
                    .map(|(s, _)| lit_cols.iter().position(|c| c == s))
                    .collect::<Option<Vec<_>>>()
                else {
                    continue;
                };
                let new_rows = rows
                    .iter()
                    .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                plan.ops_mut()[id] = AlgOp::Lit {
                    columns: columns.iter().map(|(_, t)| t.clone()).collect(),
                    rows: new_rows,
                };
                report.constants_folded += 1;
                return true;
            }
            _ => continue,
        };
        let AlgOp::Lit { columns, rows } = plan.op(input).clone() else {
            unreachable!("lit_column checked the input is a literal");
        };
        let new_rows: Vec<Vec<Value>> = rows.into_iter().filter(|r| keep(r)).collect();
        plan.ops_mut()[id] = AlgOp::Lit {
            columns,
            rows: new_rows,
        };
        report.constants_folded += 1;
        return true;
    }
    false
}

/// If `input` is a small literal containing `column`, its index.
fn lit_column(plan: &Plan, input: usize, column: &str) -> Option<usize> {
    let AlgOp::Lit { columns, rows } = plan.op(input) else {
        return None;
    };
    if rows.len() > LIT_FOLD_CAP {
        return None;
    }
    columns.iter().position(|c| c == column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OpId, PlanBuilder};

    fn lit2(b: &mut PlanBuilder) -> OpId {
        b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "flag".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Bool(true)],
                vec![Value::Nat(2), Value::Bool(false)],
            ],
        })
    }

    #[test]
    fn pushes_select_through_projection_with_rename() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["a".into(), "b".into()],
            rows: (0..100)
                .map(|i| vec![Value::Nat(i), Value::Nat(i % 7)])
                .collect(),
        });
        let d = b.add(AlgOp::Distinct { input: l });
        let p = b.add(AlgOp::Project {
            input: d,
            columns: vec![("a".into(), "x".into()), ("b".into(), "y".into())],
        });
        let s = b.add(AlgOp::SelectEq {
            input: p,
            column: "y".into(),
            value: Value::Nat(3),
        });
        let mut plan = b.finish(s);
        let mut report = OptimizeReport::default();
        assert!(push_selections(&mut plan, &mut report));
        // σ moved through π (renamed to b) and through δ.
        assert_eq!(report.predicates_pushed, 2);
        let AlgOp::Project { input, .. } = plan.op(plan.root()) else {
            panic!("root should be the hoisted projection");
        };
        let AlgOp::Distinct { input } = plan.op(*input) else {
            panic!("expected distinct under the projection");
        };
        match plan.op(*input) {
            AlgOp::SelectEq { column, .. } => assert_eq!(column, "b"),
            other => panic!("expected pushed selection, found {other:?}"),
        }
    }

    #[test]
    fn pushes_select_below_join_on_owning_side() {
        let mut b = PlanBuilder::new();
        let left = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: (0..80)
                .map(|i| vec![Value::Nat(i), Value::Nat(i)])
                .collect(),
        });
        let dl = b.add(AlgOp::Distinct { input: left });
        let right = b.add(AlgOp::Lit {
            columns: vec!["iter1".into(), "val".into()],
            rows: (0..80)
                .map(|i| vec![Value::Nat(i), Value::Nat(i * 2)])
                .collect(),
        });
        let dr = b.add(AlgOp::Distinct { input: right });
        let j = b.add(AlgOp::EquiJoin {
            left: dl,
            right: dr,
            left_col: "iter".into(),
            right_col: "iter1".into(),
        });
        let s = b.add(AlgOp::SelectEq {
            input: j,
            column: "val".into(),
            value: Value::Nat(4),
        });
        let mut plan = b.finish(s);
        let mut report = OptimizeReport::default();
        assert!(push_selections(&mut plan, &mut report));
        // Pushed below the join (right side) and then through that δ.
        assert_eq!(report.predicates_pushed, 2);
        let AlgOp::EquiJoin { right, .. } = plan.op(plan.root()) else {
            panic!("root should be the join after the push");
        };
        let AlgOp::Distinct { input } = plan.op(*right) else {
            panic!("expected δ on the right side");
        };
        assert!(matches!(plan.op(*input), AlgOp::SelectEq { .. }));
    }

    #[test]
    fn does_not_push_under_shared_children() {
        let mut b = PlanBuilder::new();
        let l = lit2(&mut b);
        let d = b.add(AlgOp::Distinct { input: l });
        let s = b.add(AlgOp::Select {
            input: d,
            column: "flag".into(),
        });
        // Second consumer of the δ: pushing the σ below it would filter
        // rows this branch still needs.
        let u = b.add(AlgOp::Union { left: s, right: d });
        let mut plan = b.finish(u);
        let mut report = OptimizeReport::default();
        push_selections(&mut plan, &mut report);
        assert_eq!(report.predicates_pushed, 0);
    }

    #[test]
    fn folds_select_eq_and_projection_over_literals() {
        let mut b = PlanBuilder::new();
        let l = lit2(&mut b);
        let s = b.add(AlgOp::SelectEq {
            input: l,
            column: "iter".into(),
            value: Value::Nat(2),
        });
        let p = b.add(AlgOp::Project {
            input: s,
            columns: vec![("flag".into(), "f".into())],
        });
        let mut plan = b.finish(p);
        let mut report = OptimizeReport::default();
        assert!(push_selections(&mut plan, &mut report));
        assert_eq!(report.constants_folded, 2);
        match plan.op(plan.root()) {
            AlgOp::Lit { columns, rows } => {
                assert_eq!(columns, &vec!["f".to_string()]);
                assert_eq!(rows, &vec![vec![Value::Bool(false)]]);
            }
            other => panic!("expected fully folded literal, found {other:?}"),
        }
    }

    #[test]
    fn boolean_select_only_folds_all_bool_columns() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["flag".into()],
            rows: vec![vec![Value::Bool(true)], vec![Value::Nat(1)]],
        });
        let s = b.add(AlgOp::Select {
            input: l,
            column: "flag".into(),
        });
        let mut plan = b.finish(s);
        let mut report = OptimizeReport::default();
        // Folding would swallow the runtime type error: must not fire.
        push_selections(&mut plan, &mut report);
        assert_eq!(report.constants_folded, 0);
        assert!(matches!(plan.op(plan.root()), AlgOp::Select { .. }));
    }
}
