//! Hash-consed subplan dedup and its late inverse, chain unsharing.
//!
//! [`hash_cons`] merges structurally identical subplans in **one**
//! bottom-up pass: children are first rewritten to their canonical
//! representatives, so a whole duplicated subtree collapses without the
//! fixpoint iterations the string-keyed CSE of the basic level needs.
//! (Same rewrites, counted separately in `subplans_deduped`.)
//!
//! [`unshare_fusable_chains`] runs exactly once *after* the rewrite
//! fixpoint and deliberately undoes a little of that sharing: a cheap
//! row-at-a-time operator whose result is consumed by several fusable
//! parents is cloned per parent, so each clone becomes a
//! single-consumer link that the physical planner fuses into its
//! consumer's pipeline instead of materializing a table that is shared
//! purely by coincidence of structure.  Recomputing a projection or a
//! selection per pipeline is cheaper than materializing it once —
//! that's the whole premise of fusion.  The two passes must never
//! alternate inside the same loop: they are mutual inverses.

use std::collections::HashMap;

use super::OptimizeReport;
use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};

/// Merge structurally identical operators in one bottom-up pass;
/// `true` if anything merged.
pub fn hash_cons(plan: &mut Plan, report: &mut OptimizeReport) -> bool {
    let mut canonical: HashMap<String, OpId> = HashMap::new();
    let mut rep: Vec<OpId> = (0..plan.ops().len()).collect();
    let mut merged = 0;
    for id in plan.reachable() {
        // Children first (topological order): point them at their
        // canonical representatives, then key this operator.
        let children = plan.op(id).children();
        for (slot, child) in children.iter().enumerate() {
            if rep[*child] != *child {
                plan.ops_mut()[id].replace_child(slot, rep[*child]);
            }
        }
        let key = format!("{:?}", plan.op(id));
        match canonical.get(&key) {
            Some(&existing) if existing != id => {
                rep[id] = existing;
                merged += 1;
            }
            Some(_) => {}
            None => {
                canonical.insert(key, id);
            }
        }
    }
    let root = plan.root();
    if rep[root] != root {
        plan.set_root(rep[root]);
    }
    report.subplans_deduped += merged;
    merged > 0
}

/// Can this operator be fused into a pipeline at all?  Mirrors the
/// physical planner's fusable set.
fn chainable(op: &AlgOp) -> bool {
    matches!(
        op,
        AlgOp::Project { .. }
            | AlgOp::Select { .. }
            | AlgOp::SelectEq { .. }
            | AlgOp::Attach { .. }
            | AlgOp::UnaryMap { .. }
            | AlgOp::BinaryMap { .. }
            | AlgOp::FnData { .. }
            | AlgOp::Distinct { .. }
    )
}

/// Is this operator cheap enough to evaluate once per consumer?
/// `FnData` (node resolution) and `Distinct` (hashing) stay shared.
fn cheap(op: &AlgOp) -> bool {
    matches!(
        op,
        AlgOp::Project { .. }
            | AlgOp::Select { .. }
            | AlgOp::SelectEq { .. }
            | AlgOp::Attach { .. }
            | AlgOp::UnaryMap { .. }
            | AlgOp::BinaryMap { .. }
    )
}

/// Clone shared cheap operators so every fusable consumer gets its own
/// single-consumer copy; cascades down chains until sharing bottoms out
/// at a non-cheap operator (which stays materialized once).
pub fn unshare_fusable_chains(plan: &mut Plan, report: &mut OptimizeReport) {
    loop {
        let reachable = plan.reachable();
        // Consumer edges per operator: (parent, child slot).
        let mut edges: HashMap<OpId, Vec<(OpId, usize)>> = HashMap::new();
        for &p in &reachable {
            for (slot, c) in plan.op(p).children().into_iter().enumerate() {
                edges.entry(c).or_default().push((p, slot));
            }
        }
        let mut did = false;
        for &id in &reachable {
            if id == plan.root() || !cheap(plan.op(id)) {
                continue;
            }
            let Some(parents) = edges.get(&id) else {
                continue;
            };
            if parents.len() < 2 {
                continue;
            }
            let fusable_edges: Vec<(OpId, usize)> = parents
                .iter()
                .copied()
                .filter(|&(p, _)| chainable(plan.op(p)))
                .collect();
            if fusable_edges.is_empty() {
                continue;
            }
            // If every consumer could fuse, the first keeps the original
            // (now single-consumer); otherwise the original stays behind
            // for the non-fusable consumers and every fusable edge gets
            // a clone.
            let clone_for: &[(OpId, usize)] = if fusable_edges.len() == parents.len() {
                &fusable_edges[1..]
            } else {
                &fusable_edges[..]
            };
            if clone_for.is_empty() {
                continue;
            }
            for &(parent, slot) in clone_for {
                let copy = plan.op(id).clone();
                plan.ops_mut().push(copy);
                let new_id = plan.ops_mut().len() - 1;
                plan.ops_mut()[parent].replace_child(slot, new_id);
                report.chains_unshared += 1;
            }
            did = true;
            break; // edge maps are stale: rescan
        }
        if !did {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;

    fn lit(b: &mut PlanBuilder) -> OpId {
        b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Int(7)]],
        })
    }

    #[test]
    fn hash_cons_collapses_duplicate_subtrees_in_one_pass() {
        let mut b = PlanBuilder::new();
        // Two copies of lit → project → select, three levels deep.
        let branch = |b: &mut PlanBuilder| {
            let l = lit(b);
            let p = b.add(AlgOp::Project {
                input: l,
                columns: vec![("iter".into(), "iter".into()), ("item".into(), "v".into())],
            });
            b.add(AlgOp::SelectEq {
                input: p,
                column: "v".into(),
                value: Value::Int(7),
            })
        };
        let s1 = branch(&mut b);
        let s2 = branch(&mut b);
        let u = b.add(AlgOp::Union {
            left: s1,
            right: s2,
        });
        let mut plan = b.finish(u);
        let mut report = OptimizeReport::default();
        assert!(hash_cons(&mut plan, &mut report));
        // All three levels merge in a single invocation.
        assert_eq!(report.subplans_deduped, 3);
        let AlgOp::Union { left, right } = plan.op(plan.root()) else {
            panic!("root must stay a union");
        };
        assert_eq!(left, right);
        assert!(!hash_cons(&mut plan, &mut report), "second run is a no-op");
    }

    #[test]
    fn unshare_clones_shared_cheap_ops_for_fusable_consumers() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let shared = b.add(AlgOp::Attach {
            input: l,
            target: "flag".into(),
            value: Value::Bool(true),
        });
        // Two fusable consumers of the shared attach.
        let c1 = b.add(AlgOp::Select {
            input: shared,
            column: "flag".into(),
        });
        let c2 = b.add(AlgOp::Project {
            input: shared,
            columns: vec![("item".into(), "item".into())],
        });
        let u = b.add(AlgOp::Union {
            left: c1,
            right: c2,
        });
        let mut plan = b.finish(u);
        let mut report = OptimizeReport::default();
        unshare_fusable_chains(&mut plan, &mut report);
        assert_eq!(report.chains_unshared, 1);
        // The consumers now read different (but identical) attaches.
        let AlgOp::Select { input: i1, .. } = plan.op(c1) else {
            panic!()
        };
        let AlgOp::Project { input: i2, .. } = plan.op(c2) else {
            panic!()
        };
        assert_ne!(i1, i2);
        assert_eq!(format!("{:?}", plan.op(*i1)), format!("{:?}", plan.op(*i2)));
    }

    #[test]
    fn unshare_keeps_the_original_for_non_fusable_consumers() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let shared = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        let fuse = b.add(AlgOp::Select {
            input: shared,
            column: "item".into(),
        });
        // Sort is a breaker: it keeps reading the original operator.
        let keep = b.add(AlgOp::Sort {
            input: shared,
            by: vec![],
        });
        let u = b.add(AlgOp::Union {
            left: fuse,
            right: keep,
        });
        let mut plan = b.finish(u);
        let mut report = OptimizeReport::default();
        unshare_fusable_chains(&mut plan, &mut report);
        assert_eq!(report.chains_unshared, 1);
        let AlgOp::Sort { input, .. } = plan.op(keep) else {
            panic!()
        };
        assert_eq!(*input, shared, "breaker consumer keeps the original");
        let AlgOp::Select { input, .. } = plan.op(fuse) else {
            panic!()
        };
        assert_ne!(*input, shared, "fusable consumer got its own clone");
    }

    #[test]
    fn unshare_leaves_expensive_ops_shared() {
        let mut b = PlanBuilder::new();
        let l = lit(&mut b);
        let shared = b.add(AlgOp::Distinct { input: l });
        let c1 = b.add(AlgOp::Select {
            input: shared,
            column: "item".into(),
        });
        let c2 = b.add(AlgOp::FnData { input: shared });
        let u = b.add(AlgOp::Union {
            left: c1,
            right: c2,
        });
        let mut plan = b.finish(u);
        let mut report = OptimizeReport::default();
        unshare_fusable_chains(&mut plan, &mut report);
        assert_eq!(report.chains_unshared, 0);
    }
}
