//! Schema and property inference.
//!
//! The paper attributes much of Pathfinder's optimization potential to "a
//! careful consideration of order properties of relational operators" \[3\]
//! together with the restrictions that hold for compiled plans.  This module
//! infers, per operator, the output column set and two such properties:
//!
//! * `distinct` — the output provably carries no duplicate rows, and
//! * `doc_ordered` — the output is sorted by `(iter, item)` with items in
//!   document order per iteration (the invariant `fs:distinct-doc-order`
//!   establishes).
//!
//! The peephole optimizer uses these to remove redundant δ / `ddo` / sort
//! operators.

use std::collections::HashMap;

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};

/// Inferred properties of one operator's output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Properties {
    /// Output column names, in schema order.
    pub columns: Vec<String>,
    /// The output provably contains no duplicate rows.
    pub distinct: bool,
    /// The output is an `iter|pos|item` table in document order per `iter`
    /// with no duplicate items per `iter`.
    pub doc_ordered: bool,
}

/// Infer properties for every operator reachable from the plan root.
pub fn infer_schema(plan: &Plan) -> HashMap<OpId, Properties> {
    let mut props: HashMap<OpId, Properties> = HashMap::new();
    for id in plan.reachable() {
        let p = infer_one(plan, id, &props);
        props.insert(id, p);
    }
    props
}

fn get(props: &HashMap<OpId, Properties>, id: OpId) -> &Properties {
    props.get(&id).expect("children inferred before parents")
}

pub(crate) fn infer_one(plan: &Plan, id: OpId, props: &HashMap<OpId, Properties>) -> Properties {
    match plan.op(id) {
        AlgOp::Lit { columns, rows } => Properties {
            columns: columns.clone(),
            distinct: rows.len() <= 1,
            doc_ordered: false,
        },
        AlgOp::Doc { .. } => Properties {
            columns: vec!["item".into()],
            distinct: true,
            doc_ordered: false,
        },
        AlgOp::Project { input, columns } => {
            let child = get(props, *input);
            Properties {
                columns: columns.iter().map(|(_, t)| t.clone()).collect(),
                // π does not eliminate duplicates; distinctness survives only
                // if no column was dropped (a pure renaming).
                distinct: child.distinct && columns.len() >= child.columns.len(),
                doc_ordered: false,
            }
        }
        AlgOp::Select { input, .. }
        | AlgOp::SelectEq { input, .. }
        | AlgOp::IndexScan { input, .. } => {
            let child = get(props, *input);
            Properties {
                columns: child.columns.clone(),
                distinct: child.distinct,
                doc_ordered: child.doc_ordered,
            }
        }
        AlgOp::Distinct { input } => {
            let child = get(props, *input);
            Properties {
                columns: child.columns.clone(),
                distinct: true,
                doc_ordered: child.doc_ordered,
            }
        }
        AlgOp::Union { left, right: _ } => {
            let l = get(props, *left);
            Properties {
                columns: l.columns.clone(),
                distinct: false,
                doc_ordered: false,
            }
        }
        AlgOp::Difference { left, .. } => {
            let l = get(props, *left);
            Properties {
                columns: l.columns.clone(),
                distinct: l.distinct,
                doc_ordered: l.doc_ordered,
            }
        }
        AlgOp::EquiJoin { left, right, .. }
        | AlgOp::ThetaJoin { left, right, .. }
        | AlgOp::Cross { left, right } => {
            let l = get(props, *left);
            let r = get(props, *right);
            let mut columns = l.columns.clone();
            columns.extend(r.columns.clone());
            Properties {
                columns,
                distinct: false,
                doc_ordered: false,
            }
        }
        AlgOp::RowNum { input, target, .. } => {
            let child = get(props, *input);
            let mut columns = child.columns.clone();
            columns.push(target.clone());
            Properties {
                // A numbering column is a key, so the output is distinct
                // (per partition the numbers are unique; together with the
                // partition column they key the row).
                columns,
                distinct: true,
                doc_ordered: false,
            }
        }
        AlgOp::BinaryMap { input, target, .. }
        | AlgOp::UnaryMap { input, target, .. }
        | AlgOp::Attach { input, target, .. } => {
            let child = get(props, *input);
            let mut columns = child.columns.clone();
            columns.push(target.clone());
            Properties {
                columns,
                distinct: child.distinct,
                doc_ordered: false,
            }
        }
        AlgOp::Aggregate { group, target, .. } => Properties {
            columns: vec![group.clone(), target.clone()],
            distinct: true,
            doc_ordered: false,
        },
        AlgOp::Step { .. } => Properties {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            distinct: true,
            // The staircase join produces document order and removes
            // duplicates per iteration by construction.
            doc_ordered: true,
        },
        AlgOp::DocOrder { input } => {
            let child = get(props, *input);
            Properties {
                columns: child.columns.clone(),
                distinct: true,
                doc_ordered: true,
            }
        }
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => {
            let child = get(props, *input);
            Properties {
                columns: child.columns.clone(),
                distinct: false,
                doc_ordered: false,
            }
        }
        AlgOp::Ebv { .. } => Properties {
            columns: vec!["iter".into(), "item".into()],
            distinct: true,
            doc_ordered: false,
        },
        AlgOp::ElemConstruct { .. } | AlgOp::TextConstruct { .. } | AlgOp::AttrConstruct { .. } => {
            Properties {
                columns: vec!["iter".into(), "pos".into(), "item".into()],
                distinct: true,
                doc_ordered: false,
            }
        }
        AlgOp::Sort { input, .. } => {
            let child = get(props, *input);
            Properties {
                columns: child.columns.clone(),
                distinct: child.distinct,
                doc_ordered: child.doc_ordered,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::SortSpec;
    use crate::plan::PlanBuilder;
    use pf_relational::Value;
    use pf_store::{Axis, NodeTest};

    #[test]
    fn step_output_is_doc_ordered_and_distinct() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![],
        });
        let step = b.add(AlgOp::Step {
            input: lit,
            axis: Axis::Descendant,
            test: NodeTest::AnyElement,
        });
        let ddo = b.add(AlgOp::DocOrder { input: step });
        let plan = b.finish(ddo);
        let props = infer_schema(&plan);
        assert!(props[&step].doc_ordered);
        assert!(props[&step].distinct);
        assert_eq!(props[&step].columns, vec!["iter", "pos", "item"]);
        assert!(props[&ddo].doc_ordered);
    }

    #[test]
    fn project_tracks_renamed_columns() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(5)]],
        });
        let proj = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "outer".into()),
                ("item".into(), "item".into()),
            ],
        });
        let plan = b.finish(proj);
        let props = infer_schema(&plan);
        assert_eq!(props[&proj].columns, vec!["outer", "item"]);
        assert!(
            !props[&proj].distinct,
            "dropping a column may introduce duplicates"
        );
    }

    #[test]
    fn join_concatenates_schemas_and_clears_order() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        let r = b.add(AlgOp::Lit {
            columns: vec!["inner".into(), "outer".into()],
            rows: vec![],
        });
        let j = b.add(AlgOp::EquiJoin {
            left: l,
            right: r,
            left_col: "iter".into(),
            right_col: "outer".into(),
        });
        let plan = b.finish(j);
        let props = infer_schema(&plan);
        assert_eq!(props[&j].columns, vec!["iter", "inner", "outer"]);
        assert!(!props[&j].doc_ordered);
    }

    #[test]
    fn rownum_adds_key_column() {
        let mut b = PlanBuilder::new();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into()],
            rows: vec![],
        });
        let r = b.add(AlgOp::RowNum {
            input: l,
            target: "inner".into(),
            order_by: vec![SortSpec::asc("iter"), SortSpec::asc("pos")],
            partition: None,
        });
        let plan = b.finish(r);
        let props = infer_schema(&plan);
        assert!(props[&r].distinct);
        assert_eq!(props[&r].columns, vec!["iter", "pos", "inner"]);
    }
}
