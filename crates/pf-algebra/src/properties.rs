//! Unified static plan-property inference.
//!
//! [`PlanProperties`] computes, in **one bottom-up pass** per plan, every
//! static property the optimizer and the verifier consume:
//!
//! * **schema** — output columns plus the `distinct` / `doc_ordered`
//!   flags of [`crate::schema`];
//! * **keys** — column sets on which the operator's output rows are
//!   provably distinct;
//! * **constants** — columns provably equal in every output row, with
//!   the value itself when it is statically known (the top-level
//!   `iter ≡ 1` is the important case: it shrinks the `{iter, pos}` key
//!   of a step to `{pos}`, exactly what the serializer sorts by);
//! * **value provenance** — per column, which upstream (operator,
//!   column) pairs are provable value supersets (and which are provably
//!   *disjoint*, via single-column `Difference`).  This is what lets a
//!   compiler-generated `A ∪ (B ∖ A)` union — the default-branch
//!   plumbing around every aggregate — keep a key: the two sides can
//!   never collide on the discriminating column;
//! * **cardinality** — estimated output rows, seeded from
//!   [`pf_store::DocStatistics`] through a [`StatsSource`];
//! * **document provenance** — the URI of the single `doc()` source
//!   feeding the operator's items, if unambiguous (what lets an axis
//!   step find its tag histogram and an `IndexScan` its sidecar);
//! * **order_free** — whether permuting the operator's output rows can
//!   change the serialized query result (the only top-down part,
//!   resolved over consumer edges after the bottom-up pass).
//!
//! The legacy entry points — [`crate::optimize::isolation::Isolation`]
//! and [`crate::optimize::cardinality::CardEstimate`] — are thin
//! wrappers over this pass; rewrite rules that need several property
//! families at once ([`crate::optimize::reorder`],
//! [`crate::optimize::indexscan`]) analyze the plan once instead of
//! three times.  [`crate::verify`] checks rewrites against the same
//! inference, so the optimizer is validated by the very properties it
//! plans with.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use pf_relational::ops::AggFunc;
use pf_relational::Value;
use pf_store::{Axis, DocStatistics};

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};
use crate::schema::{infer_one, Properties};

/// Resolves a document URI to its measured statistics.  The engine
/// implements this over its registry snapshot; [`NoStats`] is the
/// statistics-free fallback (pure heuristics).
pub trait StatsSource {
    /// Statistics for the document registered under `uri`, if known.
    fn doc_statistics(&self, uri: &str) -> Option<Arc<DocStatistics>>;
}

/// A [`StatsSource`] that knows nothing; every step falls back to
/// fan-out heuristics.
pub struct NoStats;

impl StatsSource for NoStats {
    fn doc_statistics(&self, _uri: &str) -> Option<Arc<DocStatistics>> {
        None
    }
}

/// A value-provenance tag: “the tracked column's values are related to
/// column `.1` of operator `.0`”.
pub(crate) type Tag = (OpId, String);
/// Per-column tag sets for one operator.
pub(crate) type TagMap = BTreeMap<String, BTreeSet<Tag>>;

/// Rows of a literal are scanned for distinctness/constancy only up to
/// this many rows — larger literals simply get no column keys.
const LIT_SCAN_CAP: usize = 64;

/// Provenance tag sets are truncated to this many entries (keeping the
/// smallest, deterministically) so deep plans stay linear to analyze.
const TAG_CAP: usize = 24;

/// Every statically inferred property of one plan, per operator.
/// Indexed by [`OpId`]; entries for unreachable operators are
/// empty/false/zero.
#[derive(Debug, Clone)]
pub struct PlanProperties {
    /// Schema properties ([`crate::schema::infer_schema`]-equivalent).
    schema: HashMap<OpId, Properties>,
    /// Column sets on which each operator's rows are provably distinct.
    keys: Vec<Vec<BTreeSet<String>>>,
    /// Columns provably constant across each operator's rows, with the
    /// constant's value when statically known.
    constants: Vec<BTreeMap<String, Option<Value>>>,
    /// `supersets[id][c]` ∋ `t` ⇒ values of `c` at `id` ⊆ values of `t`.
    supersets: Vec<TagMap>,
    /// `equalsets[id][c]` ∋ `t` ⇒ values of `c` at `id` = values of `t`
    /// (as sets).  Always a subset of `supersets[id][c]`.
    equalsets: Vec<TagMap>,
    /// `exclusions[id][c]` ∋ `t` ⇒ values of `c` at `id` are disjoint
    /// from the values of `t`.
    exclusions: Vec<TagMap>,
    /// Provably-empty operators (an empty literal, and everything whose
    /// output cannot have rows when an input has none).  Structural, not
    /// estimated: `true` is a guarantee, unlike [`PlanProperties::rows`].
    empty: Vec<bool>,
    /// Estimated output rows.
    rows: Vec<f64>,
    /// Document provenance: the URI of the single `doc()` source feeding
    /// the operator's items, if unambiguous.
    doc: Vec<Option<String>>,
    /// Whether permuting the operator's output rows is unobservable in
    /// the serialized result.
    order_free: Vec<bool>,
}

impl PlanProperties {
    /// Analyze `plan` without document statistics (cardinalities fall
    /// back to fan-out heuristics).
    pub fn analyze(plan: &Plan) -> PlanProperties {
        PlanProperties::analyze_with(plan, &NoStats)
    }

    /// Analyze `plan`, seeding step cardinalities from `stats`.
    pub fn analyze_with(plan: &Plan, stats: &dyn StatsSource) -> PlanProperties {
        let n = plan.ops().len();
        let mut pp = PlanProperties {
            schema: HashMap::new(),
            keys: vec![Vec::new(); n],
            constants: vec![BTreeMap::new(); n],
            supersets: vec![TagMap::new(); n],
            equalsets: vec![TagMap::new(); n],
            exclusions: vec![TagMap::new(); n],
            empty: vec![false; n],
            rows: vec![0.0_f64; n],
            doc: vec![None; n],
            order_free: vec![true; n],
        };
        let topo = plan.reachable();
        for &id in &topo {
            let schema = infer_one(plan, id, &pp.schema);
            pp.schema.insert(id, schema);
            pp.empty[id] = infer_empty(plan, id, &pp);
            let (est, uri) = estimate_op(plan, id, &pp.rows, &pp.doc, stats);
            pp.rows[id] = est;
            pp.doc[id] = uri;
            pp.constants[id] = infer_constants(plan, id, &pp);
            let (sup, eq, excl) = infer_provenance(plan, id, &pp);
            pp.supersets[id] = sup;
            pp.equalsets[id] = eq;
            pp.exclusions[id] = excl;
            pp.keys[id] = infer_keys(plan, id, &pp);
        }
        // Top-down: the root's order matters unless serialization's
        // stable pos-sort fully determines it; every other operator is
        // constrained through its consumer edges, parents first.
        let root = plan.root();
        let pos: BTreeSet<String> = std::iter::once("pos".to_string()).collect();
        pp.order_free[root] = pp
            .schema
            .get(&root)
            .is_some_and(|p| p.columns.iter().any(|c| c == "pos"))
            && pp.keyed_by(root, &pos);
        for &id in topo.iter().rev() {
            let parent_free = pp.order_free[id];
            let children = plan.op(id).children();
            for (slot, &child) in children.iter().enumerate() {
                let edge = edge_order_free(plan.op(id), slot, parent_free, child, &pp);
                pp.order_free[child] &= edge;
            }
        }
        pp
    }

    /// `true` if some key of `id`, after removing provably constant
    /// columns, is contained in `cols` — i.e. rows of `id` are distinct
    /// on `cols`.
    pub fn keyed_by(&self, id: OpId, cols: &BTreeSet<String>) -> bool {
        let constants = &self.constants[id];
        self.keys[id].iter().any(|key| {
            key.iter()
                .all(|c| constants.contains_key(c) || cols.contains(c))
        })
    }

    /// Whether permuting the rows of `id` is unobservable in the
    /// serialized result.
    pub fn order_free(&self, id: OpId) -> bool {
        self.order_free[id]
    }

    /// The inferred key sets of `id`.
    pub fn keys(&self, id: OpId) -> &[BTreeSet<String>] {
        &self.keys[id]
    }

    /// The provably constant columns of `id`, with statically known
    /// values where available.
    pub fn constants(&self, id: OpId) -> &BTreeMap<String, Option<Value>> {
        &self.constants[id]
    }

    /// The schema properties of `id` (`None` for unreachable operators).
    pub fn schema(&self, id: OpId) -> Option<&Properties> {
        self.schema.get(&id)
    }

    /// The output columns of `id` (empty for unreachable operators).
    pub fn columns(&self, id: OpId) -> &[String] {
        self.schema
            .get(&id)
            .map(|p| p.columns.as_slice())
            .unwrap_or(&[])
    }

    /// Estimated output rows of operator `id`.
    pub fn rows(&self, id: OpId) -> f64 {
        self.rows.get(id).copied().unwrap_or(0.0)
    }

    /// Whether operator `id` provably yields no rows (structural — a
    /// guarantee, not an estimate).
    pub fn provably_empty(&self, id: OpId) -> bool {
        self.empty.get(id).copied().unwrap_or(false)
    }

    /// The largest single-operator estimate of the plan, rounded up — a
    /// shape-derived stand-in for peak resident rows (admission control
    /// uses this for plans that have never run).
    pub fn peak_rows(&self, plan: &Plan) -> usize {
        plan.reachable()
            .into_iter()
            .map(|id| self.rows[id])
            .fold(0.0_f64, f64::max)
            .ceil() as usize
    }

    /// Document provenance of `id`: the URI of the single `doc()` source
    /// feeding its items, if unambiguous.
    pub fn doc(&self, id: OpId) -> Option<&str> {
        self.doc.get(id).and_then(|d| d.as_deref())
    }

    /// Supersets of column `c` at `id`, including `(id, c)` itself.
    fn supersets_with_self(&self, id: OpId, c: &str) -> BTreeSet<Tag> {
        let mut tags = self.supersets[id].get(c).cloned().unwrap_or_default();
        tags.insert((id, c.to_string()));
        tags
    }
}

fn set(cols: &[&str]) -> BTreeSet<String> {
    cols.iter().map(|c| c.to_string()).collect()
}

fn cap(tags: BTreeSet<Tag>) -> BTreeSet<Tag> {
    if tags.len() <= TAG_CAP {
        tags
    } else {
        tags.into_iter().take(TAG_CAP).collect()
    }
}

/// Tag set of `(input, src)` extended with the input's own tags from
/// `maps[input][src]`.
fn inherit(maps: &[TagMap], input: OpId, src: &str, include_self: bool) -> BTreeSet<Tag> {
    let mut tags = maps[input].get(src).cloned().unwrap_or_default();
    if include_self {
        tags.insert((input, src.to_string()));
    }
    cap(tags)
}

/// Value-provenance inference for one operator: `(supersets, equalsets,
/// exclusions)`.  Soundness contract per relation is documented on
/// [`PlanProperties`]'s fields; every arm below must only record
/// relations that hold for the operator's actual value semantics.
fn infer_provenance(plan: &Plan, id: OpId, pp: &PlanProperties) -> (TagMap, TagMap, TagMap) {
    let mut sup = TagMap::new();
    let mut eq = TagMap::new();
    let mut excl = TagMap::new();
    // Row-preserving rename: `tgt` takes exactly the values `src` had.
    let exact = |sup: &mut TagMap,
                 eq: &mut TagMap,
                 excl: &mut TagMap,
                 input: OpId,
                 src: &str,
                 tgt: &str| {
        sup.insert(tgt.into(), inherit(&pp.supersets, input, src, true));
        eq.insert(tgt.into(), inherit(&pp.equalsets, input, src, true));
        excl.insert(tgt.into(), inherit(&pp.exclusions, input, src, false));
    };
    // Row subset: values shrink — supersets and exclusions carry, set
    // equality does not.
    let subset = |sup: &mut TagMap, excl: &mut TagMap, input: OpId, src: &str, tgt: &str| {
        sup.insert(tgt.into(), inherit(&pp.supersets, input, src, true));
        excl.insert(tgt.into(), inherit(&pp.exclusions, input, src, false));
    };
    let cols = |of: OpId| -> Vec<String> { pp.columns(of).to_vec() };
    match plan.op(id) {
        AlgOp::Lit { .. } | AlgOp::Doc { .. } => {}
        AlgOp::Project { input, columns } => {
            for (src, tgt) in columns {
                exact(&mut sup, &mut eq, &mut excl, *input, src, tgt);
            }
        }
        // Full-row dedup / re-sort preserves every column's value set.
        AlgOp::Sort { input, .. } | AlgOp::Distinct { input } | AlgOp::DocOrder { input } => {
            for c in cols(*input) {
                exact(&mut sup, &mut eq, &mut excl, *input, &c, &c);
            }
        }
        AlgOp::Select { input, .. }
        | AlgOp::SelectEq { input, .. }
        | AlgOp::IndexScan { input, .. } => {
            for c in cols(*input) {
                subset(&mut sup, &mut excl, *input, &c, &c);
            }
        }
        // Row-preserving column adders: every pre-existing column keeps
        // its exact value multiset; the new column is fresh.
        AlgOp::Attach { input, target, .. }
        | AlgOp::RowNum { input, target, .. }
        | AlgOp::UnaryMap { input, target, .. }
        | AlgOp::BinaryMap { input, target, .. } => {
            for c in cols(*input) {
                if c != *target {
                    exact(&mut sup, &mut eq, &mut excl, *input, &c, &c);
                }
            }
        }
        // fn:data / fn:root rewrite `item`; other columns ride along
        // row-preserved.
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => {
            for c in cols(*input) {
                if c != "item" {
                    exact(&mut sup, &mut eq, &mut excl, *input, &c, &c);
                }
            }
        }
        // The distinct group values survive exactly; the aggregate
        // target is fresh.
        AlgOp::Aggregate { input, group, .. } => {
            exact(&mut sup, &mut eq, &mut excl, *input, group, group);
        }
        // Steps emit a subset of the input iterations; item/pos are
        // fresh node/position values.
        AlgOp::Step { input, .. } | AlgOp::Ebv { input } => {
            subset(&mut sup, &mut excl, *input, "iter", "iter");
        }
        AlgOp::EquiJoin {
            left,
            right,
            left_col,
            right_col,
        } => {
            for c in cols(*left) {
                subset(&mut sup, &mut excl, *left, &c, &c);
            }
            for c in cols(*right) {
                subset(&mut sup, &mut excl, *right, &c, &c);
            }
            // Matched join columns take values present on *both* sides.
            let lc = sup.entry(left_col.clone()).or_default();
            lc.extend(inherit(&pp.supersets, *right, right_col, true));
            let lc = cap(std::mem::take(lc));
            sup.insert(left_col.clone(), lc);
            let rc = sup.entry(right_col.clone()).or_default();
            rc.extend(inherit(&pp.supersets, *left, left_col, true));
            let rc = cap(std::mem::take(rc));
            sup.insert(right_col.clone(), rc);
        }
        AlgOp::ThetaJoin { left, right, .. } | AlgOp::Cross { left, right } => {
            for c in cols(*left) {
                subset(&mut sup, &mut excl, *left, &c, &c);
            }
            for c in cols(*right) {
                subset(&mut sup, &mut excl, *right, &c, &c);
            }
        }
        // A union row comes from either side: only relations that hold
        // on both survive; a tag equal to both sides equals the union.
        AlgOp::Union { left, right } => {
            for c in cols(id) {
                let meet = |maps: &[TagMap]| -> BTreeSet<Tag> {
                    let l = maps[*left].get(&c).cloned().unwrap_or_default();
                    let r = maps[*right].get(&c).cloned().unwrap_or_default();
                    l.intersection(&r).cloned().collect()
                };
                sup.insert(c.clone(), meet(&pp.supersets));
                eq.insert(c.clone(), meet(&pp.equalsets));
                excl.insert(c.clone(), meet(&pp.exclusions));
            }
        }
        AlgOp::Difference { left, right } => {
            for c in cols(id) {
                subset(&mut sup, &mut excl, *left, &c, &c);
            }
            // A single-column difference is a set complement: its values
            // are disjoint from the right side — and from anything whose
            // value set *equals* the right side's.
            let out = cols(id);
            if let [c] = out.as_slice() {
                let entry = excl.entry(c.clone()).or_default();
                entry.extend(inherit(&pp.equalsets, *right, c, true));
                let capped = cap(std::mem::take(entry));
                excl.insert(c.clone(), capped);
            }
        }
        // One output row per loop row; iter values survive exactly, the
        // item (fresh node ids) does not.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => {
            exact(&mut sup, &mut eq, &mut excl, *loop_input, "iter", "iter");
        }
    }
    (sup, eq, excl)
}

fn infer_keys(plan: &Plan, id: OpId, pp: &PlanProperties) -> Vec<BTreeSet<String>> {
    match plan.op(id) {
        AlgOp::Lit { columns, rows } => {
            if rows.len() <= 1 {
                return vec![BTreeSet::new()];
            }
            if rows.len() > LIT_SCAN_CAP {
                return Vec::new();
            }
            let mut keys = Vec::new();
            for (idx, col) in columns.iter().enumerate() {
                let mut seen: Vec<&Value> = Vec::with_capacity(rows.len());
                let distinct = rows.iter().all(|r| {
                    let v = &r[idx];
                    if seen.contains(&v) {
                        false
                    } else {
                        seen.push(v);
                        true
                    }
                });
                if distinct {
                    keys.push(set(&[col]));
                }
            }
            keys
        }
        AlgOp::Doc { .. } => vec![BTreeSet::new()],
        AlgOp::Project { input, columns } => {
            let mut renamed = Vec::new();
            for key in &pp.keys[*input] {
                // A source column the projection drops kills the key —
                // unless it is constant at the input, in which case it
                // never contributed to distinctness anyway.
                let mapped: Option<BTreeSet<String>> = key
                    .iter()
                    .filter(|source| {
                        columns.iter().any(|(s, _)| s == *source)
                            || !pp.constants[*input].contains_key(*source)
                    })
                    .map(|source| {
                        columns
                            .iter()
                            .find(|(s, _)| s == source)
                            .map(|(_, t)| t.clone())
                    })
                    .collect();
                if let Some(mapped) = mapped {
                    renamed.push(mapped);
                }
            }
            renamed
        }
        // Row subsets keep distinctness.
        AlgOp::Select { input, .. }
        | AlgOp::SelectEq { input, .. }
        | AlgOp::IndexScan { input, .. }
        | AlgOp::Difference { left: input, .. } => pp.keys[*input].clone(),
        // Row-preserving operators keep existing keys (they only add or
        // reorder columns / rows).
        AlgOp::Sort { input, .. }
        | AlgOp::Attach { input, .. }
        | AlgOp::UnaryMap { input, .. }
        | AlgOp::BinaryMap { input, .. } => pp.keys[*input].clone(),
        AlgOp::Distinct { input } => {
            let mut keys = pp.keys[*input].clone();
            if let Some(p) = pp.schema.get(&id) {
                keys.push(p.columns.iter().cloned().collect());
            }
            keys
        }
        AlgOp::EquiJoin {
            left,
            right,
            left_col,
            right_col,
        } => {
            let mut keys = Vec::new();
            // A pair of keys, one per side, keys the concatenated rows.
            for kl in &pp.keys[*left] {
                for kr in &pp.keys[*right] {
                    keys.push(kl.union(kr).cloned().collect());
                }
            }
            // If the join column keys one side, every row of the other
            // side matches at most once, so that side's keys survive.
            let rc = std::iter::once(right_col.clone()).collect();
            if pp.keyed_by(*right, &rc) {
                keys.extend(pp.keys[*left].iter().cloned());
            }
            let lc = std::iter::once(left_col.clone()).collect();
            if pp.keyed_by(*left, &lc) {
                keys.extend(pp.keys[*right].iter().cloned());
            }
            keys
        }
        AlgOp::ThetaJoin { left, right, .. } | AlgOp::Cross { left, right } => {
            let mut keys = Vec::new();
            for kl in &pp.keys[*left] {
                for kr in &pp.keys[*right] {
                    keys.push(kl.union(kr).cloned().collect());
                }
            }
            keys
        }
        AlgOp::RowNum {
            input,
            target,
            partition,
            ..
        } => {
            let mut keys = pp.keys[*input].clone();
            let mut numbered = BTreeSet::new();
            if let Some(p) = partition {
                numbered.insert(p.clone());
            }
            numbered.insert(target.clone());
            keys.push(numbered);
            keys
        }
        AlgOp::Aggregate { group, .. } => vec![std::iter::once(group.clone()).collect()],
        // Steps and ddo sort + dedup on (iter, item) and renumber pos
        // within iter: both (iter, pos) and (iter, item) key the output.
        AlgOp::Step { .. } | AlgOp::DocOrder { .. } => {
            vec![set(&["iter", "pos"]), set(&["iter", "item"])]
        }
        AlgOp::Ebv { .. } => vec![set(&["iter"])],
        // fn:data / fn:root rewrite the item column, which can collapse
        // distinct items; keys not involving `item` survive.
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => pp.keys[*input]
            .iter()
            .filter(|k| !k.contains("item"))
            .cloned()
            .collect(),
        // A union generally loses all keys — unless some column provably
        // *discriminates* the sides (rows from different sides always
        // differ on it).  Then that column plus one key per side is a
        // key of the whole union.  Two discriminator proofs:
        //   (a) the column is constant on both sides with different
        //       known values (the `ord`-tag plumbing around unions);
        //   (b) value provenance shows the sides are disjoint on it (the
        //       `A ∪ (B ∖ A)` default-branch plumbing).
        AlgOp::Union { left, right } => {
            // A provably empty side contributes no rows: the union *is*
            // the other side, keys included.
            if pp.empty[*left] {
                return pp.keys[*right].clone();
            }
            if pp.empty[*right] {
                return pp.keys[*left].clone();
            }
            let Some(p) = pp.schema.get(&id) else {
                return Vec::new();
            };
            let mut discriminators: BTreeSet<String> = BTreeSet::new();
            for c in &p.columns {
                let known = |side: OpId| pp.constants[side].get(c).cloned().flatten();
                if let (Some(va), Some(vb)) = (known(*left), known(*right)) {
                    if va != vb {
                        discriminators.insert(c.clone());
                        continue;
                    }
                }
                let disjoint = |a: OpId, b: OpId| {
                    let sup = pp.supersets_with_self(a, c);
                    pp.exclusions[b].get(c).is_some_and(|x| !sup.is_disjoint(x))
                };
                if disjoint(*left, *right) || disjoint(*right, *left) {
                    discriminators.insert(c.clone());
                }
            }
            let mut keys = Vec::new();
            for c in &discriminators {
                for kl in &pp.keys[*left] {
                    for kr in &pp.keys[*right] {
                        let mut key: BTreeSet<String> = kl.union(kr).cloned().collect();
                        key.insert(c.clone());
                        if !keys.contains(&key) {
                            keys.push(key);
                        }
                    }
                }
            }
            keys
        }
        // One output row per loop row, each carrying a fresh node id.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => {
            let mut keys = vec![set(&["item"])];
            let iter = set(&["iter"]);
            if pp.keyed_by(*loop_input, &iter) {
                keys.push(iter);
            }
            keys
        }
    }
}

/// Structural emptiness: `true` only when the operator provably yields
/// no rows, whatever the documents contain.
fn infer_empty(plan: &Plan, id: OpId, pp: &PlanProperties) -> bool {
    match plan.op(id) {
        AlgOp::Lit { rows, .. } => rows.is_empty(),
        AlgOp::Doc { .. } => false,
        AlgOp::Project { input, .. }
        | AlgOp::Select { input, .. }
        | AlgOp::SelectEq { input, .. }
        | AlgOp::Distinct { input }
        | AlgOp::Sort { input, .. }
        | AlgOp::DocOrder { input }
        | AlgOp::RowNum { input, .. }
        | AlgOp::BinaryMap { input, .. }
        | AlgOp::UnaryMap { input, .. }
        | AlgOp::Attach { input, .. }
        | AlgOp::Aggregate { input, .. }
        | AlgOp::Step { input, .. }
        | AlgOp::IndexScan { input, .. }
        | AlgOp::FnData { input }
        | AlgOp::FnRoot { input }
        | AlgOp::Ebv { input } => pp.empty[*input],
        AlgOp::Union { left, right } => pp.empty[*left] && pp.empty[*right],
        AlgOp::Difference { left, .. } => pp.empty[*left],
        AlgOp::EquiJoin { left, right, .. }
        | AlgOp::ThetaJoin { left, right, .. }
        | AlgOp::Cross { left, right } => pp.empty[*left] || pp.empty[*right],
        // Constructors emit one node per loop row.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => pp.empty[*loop_input],
    }
}

fn infer_constants(plan: &Plan, id: OpId, pp: &PlanProperties) -> BTreeMap<String, Option<Value>> {
    match plan.op(id) {
        AlgOp::Lit { columns, rows } => {
            if rows.is_empty() {
                return columns.iter().map(|c| (c.clone(), None)).collect();
            }
            if rows.len() > LIT_SCAN_CAP {
                return BTreeMap::new();
            }
            columns
                .iter()
                .enumerate()
                .filter(|(idx, _)| rows.iter().all(|r| r[*idx] == rows[0][*idx]))
                .map(|(idx, c)| (c.clone(), Some(rows[0][idx].clone())))
                .collect()
        }
        // One row per document root: iter/pos constant, values opaque.
        AlgOp::Doc { .. } => [("iter".to_string(), None), ("pos".to_string(), None)]
            .into_iter()
            .collect(),
        AlgOp::Project { input, columns } => columns
            .iter()
            .filter_map(|(s, t)| pp.constants[*input].get(s).map(|v| (t.clone(), v.clone())))
            .collect(),
        // Survivors all carry `true` / the matched constant in `column`.
        AlgOp::Select { input, column } => {
            let mut c = pp.constants[*input].clone();
            c.insert(column.clone(), Some(Value::Bool(true)));
            c
        }
        AlgOp::SelectEq {
            input,
            column,
            value,
        } => {
            let mut c = pp.constants[*input].clone();
            c.insert(column.clone(), Some(value.clone()));
            c
        }
        // Row subsets / reorders keep every constant column constant.
        AlgOp::Sort { input, .. } | AlgOp::Distinct { input } | AlgOp::IndexScan { input, .. } => {
            pp.constants[*input].clone()
        }
        AlgOp::Attach {
            input,
            target,
            value,
        } => {
            let mut c = pp.constants[*input].clone();
            c.insert(target.clone(), Some(value.clone()));
            c
        }
        AlgOp::UnaryMap { input, target, .. } | AlgOp::BinaryMap { input, target, .. } => {
            let mut c = pp.constants[*input].clone();
            c.remove(target);
            c
        }
        AlgOp::RowNum { input, target, .. } => {
            let mut c = pp.constants[*input].clone();
            c.remove(target);
            c
        }
        AlgOp::EquiJoin { left, right, .. }
        | AlgOp::ThetaJoin { left, right, .. }
        | AlgOp::Cross { left, right } => {
            let mut c = pp.constants[*left].clone();
            for (col, v) in &pp.constants[*right] {
                c.entry(col.clone()).or_insert_with(|| v.clone());
            }
            c
        }
        // A column constant on both sides with the same known value is
        // still constant after concatenation — and a provably empty side
        // contributes no rows at all, so the other side's constants
        // survive as they are.
        AlgOp::Union { left, right } => {
            if pp.empty[*left] {
                return pp.constants[*right].clone();
            }
            if pp.empty[*right] {
                return pp.constants[*left].clone();
            }
            let mut c = BTreeMap::new();
            for (col, v) in &pp.constants[*left] {
                let (Some(va), Some(Some(vb))) = (v, pp.constants[*right].get(col)) else {
                    continue;
                };
                if va == vb {
                    c.insert(col.clone(), Some(va.clone()));
                }
            }
            c
        }
        AlgOp::Difference { left, .. } => pp.constants[*left].clone(),
        AlgOp::Aggregate { input, group, .. } => {
            let mut c = BTreeMap::new();
            if let Some(v) = pp.constants[*input].get(group) {
                c.insert(group.clone(), v.clone());
            }
            c
        }
        AlgOp::Step { input, .. } | AlgOp::Ebv { input } => {
            let mut c = BTreeMap::new();
            if let Some(v) = pp.constants[*input].get("iter") {
                c.insert("iter".to_string(), v.clone());
            }
            c
        }
        AlgOp::DocOrder { input } => {
            let mut c = BTreeMap::new();
            for col in ["iter", "item"] {
                if let Some(v) = pp.constants[*input].get(col) {
                    c.insert(col.to_string(), v.clone());
                }
            }
            c
        }
        AlgOp::FnData { input } | AlgOp::FnRoot { input } => {
            let mut c = pp.constants[*input].clone();
            // The item column is rewritten: still constant when the
            // input item was (same node ⇒ same atomization), but the
            // value is no longer statically known.
            if let Some(v) = c.get_mut("item") {
                *v = None;
            }
            c
        }
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => {
            let mut c = BTreeMap::new();
            if pp.constants[*loop_input].contains_key("iter") {
                c.insert("iter".to_string(), None);
            }
            c
        }
    }
}

/// Can permuting the rows of `child` (child slot `slot` of `parent_op`)
/// change the observable result, given that permuting the *parent's*
/// output rows is (`parent_free`) or is not observable?
fn edge_order_free(
    parent_op: &AlgOp,
    slot: usize,
    parent_free: bool,
    child: OpId,
    pp: &PlanProperties,
) -> bool {
    match parent_op {
        // Steps and ddo sort-normalize their input: any input order
        // yields the identical output table.
        AlgOp::Step { .. } | AlgOp::DocOrder { .. } => true,
        // A sort whose keys cover a key of the input is fully
        // deterministic; otherwise stable tie-breaking passes the input
        // order through.
        AlgOp::Sort { by, .. } => {
            let cols: BTreeSet<String> = by.iter().map(|s| s.column.clone()).collect();
            if pp.keyed_by(child, &cols) {
                true
            } else {
                parent_free
            }
        }
        // Rownum numbers rows in (order_by, input-order) sequence within
        // each partition: deterministic content iff the sort keys cover
        // a key; the output *order* still follows the input.
        AlgOp::RowNum {
            order_by,
            partition,
            ..
        } => {
            let mut cols: BTreeSet<String> = order_by.iter().map(|s| s.column.clone()).collect();
            if let Some(p) = partition {
                cols.insert(p.clone());
            }
            if pp.keyed_by(child, &cols) {
                parent_free
            } else {
                false
            }
        }
        // Count is order-insensitive; Sum/Avg accumulate floats in row
        // order, Min/Max keep the first of equal-comparing values —
        // both can observe the input order.
        AlgOp::Aggregate { func, .. } => match func {
            AggFunc::Count => parent_free,
            _ => false,
        },
        // Constructors assign node ids and gather content in row order.
        // The loop side is safe when its rows are keyed on iter (ids
        // then permute with the rows, and serialization re-sorts);
        // content is safe when (iter, pos) keys it, because the content
        // index re-sorts stably by pos within iter.
        AlgOp::ElemConstruct { .. } | AlgOp::AttrConstruct { .. } | AlgOp::TextConstruct { .. } => {
            if slot == 0 {
                if pp.keyed_by(child, &set(&["iter"])) {
                    parent_free
                } else {
                    false
                }
            } else {
                pp.keyed_by(child, &set(&["iter", "pos"]))
            }
        }
        // The right side of a difference is only probed, never emitted.
        AlgOp::Difference { .. } if slot == 1 => true,
        // Everything else is row-order passthrough: permuting the input
        // permutes the output without changing its contents (selects,
        // maps, projections, joins' left-major nesting, union's
        // concatenation, distinct's first-of-identical-rows, ebv).
        _ => parent_free,
    }
}

/// Cardinality + document provenance for one operator, from the
/// already-computed child entries.  Estimates only ever *order*
/// alternatives (join reordering picks the smallest leaf first,
/// admission control sizes a cold plan), so being roughly proportional
/// matters, absolute accuracy does not.
fn estimate_op(
    plan: &Plan,
    id: OpId,
    rows: &[f64],
    doc: &[Option<String>],
    stats: &dyn StatsSource,
) -> (f64, Option<String>) {
    match plan.op(id) {
        AlgOp::Lit { rows: r, .. } => (r.len() as f64, None),
        AlgOp::Doc { uri } => (1.0, Some(uri.clone())),
        AlgOp::Step { input, axis, test } => {
            let input_rows = rows[*input];
            let uri = doc[*input].clone();
            if input_rows == 0.0 {
                return (0.0, uri);
            }
            let doc_stats = uri.as_deref().and_then(|u| stats.doc_statistics(u));
            let est = match (&doc_stats, axis) {
                // Every context set of size ≥ 1 sees (almost) the whole
                // document below it: the step output is bounded by — and
                // for the common root-context case equal to — the total
                // number of matching nodes.
                (Some(s), Axis::Descendant | Axis::DescendantOrSelf) => s.matching(test) as f64,
                (Some(s), Axis::Child) => {
                    // Uniform fan-out: matching nodes spread evenly over
                    // all possible element parents.
                    let parents = s.elements.max(1) as f64;
                    input_rows * (s.matching(test) as f64 / parents).max(1.0 / parents)
                }
                (Some(s), Axis::Attribute) => {
                    let owners = s.elements.max(1) as f64;
                    input_rows * (s.matching(test) as f64 / owners).min(1.0)
                }
                // Upward / sideways axes and the self axis stay near the
                // context size.
                (Some(_), _) => input_rows,
                // No statistics: fixed fan-out guesses.
                (None, Axis::Descendant | Axis::DescendantOrSelf) => input_rows * 8.0,
                (None, Axis::Child) => input_rows * 3.0,
                (None, Axis::Attribute) => input_rows,
                (None, _) => input_rows,
            };
            (est.max(0.0), uri)
        }
        AlgOp::Select { input, .. } => (rows[*input] * 0.5, doc[*input].clone()),
        // Index probes are selective by construction (the rule only fires
        // on literal lookups).
        AlgOp::IndexScan { input, .. } => (rows[*input] * 0.1, doc[*input].clone()),
        AlgOp::SelectEq { input, .. } => (rows[*input] * 0.1, doc[*input].clone()),
        AlgOp::Distinct { input } => (rows[*input] * 0.8, doc[*input].clone()),
        AlgOp::Union { left, right } => (rows[*left] + rows[*right], merge_doc(doc, *left, *right)),
        AlgOp::Difference { left, right: _ } => (rows[*left], doc[*left].clone()),
        AlgOp::Cross { left, right } => (rows[*left] * rows[*right], merge_doc(doc, *left, *right)),
        AlgOp::ThetaJoin { left, right, .. } => (
            rows[*left] * rows[*right] / 3.0,
            merge_doc(doc, *left, *right),
        ),
        // Loop-lifted equi-joins are overwhelmingly iter↔iter matches:
        // close to a 1:N alignment of the two sides, not a blow-up.
        AlgOp::EquiJoin { left, right, .. } => {
            (rows[*left].max(rows[*right]), merge_doc(doc, *left, *right))
        }
        AlgOp::Aggregate { input, .. } => ((rows[*input] * 0.5).max(1.0), doc[*input].clone()),
        AlgOp::Ebv { input } => ((rows[*input] * 0.5).max(1.0), doc[*input].clone()),
        // Row-preserving operators.
        AlgOp::Project { input, .. }
        | AlgOp::RowNum { input, .. }
        | AlgOp::BinaryMap { input, .. }
        | AlgOp::UnaryMap { input, .. }
        | AlgOp::Attach { input, .. }
        | AlgOp::DocOrder { input }
        | AlgOp::FnData { input }
        | AlgOp::FnRoot { input }
        | AlgOp::Sort { input, .. } => (rows[*input], doc[*input].clone()),
        // Constructors emit one node per loop iteration (content rows are
        // folded into those nodes).  The constructed nodes live in a new
        // transient document, so provenance resets.
        AlgOp::ElemConstruct { loop_input, .. }
        | AlgOp::AttrConstruct { loop_input, .. }
        | AlgOp::TextConstruct { loop_input, .. } => (rows[*loop_input], None),
    }
}

fn merge_doc(doc: &[Option<String>], left: OpId, right: OpId) -> Option<String> {
    match (&doc[left], &doc[right]) {
        (Some(l), Some(r)) if l == r => Some(l.clone()),
        (Some(l), None) => Some(l.clone()),
        (None, Some(r)) => Some(r.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pf_store::NodeTest;

    fn doc_step(b: &mut PlanBuilder, uri: &str) -> OpId {
        let d = b.add(AlgOp::Doc { uri: uri.into() });
        let l = b.add(AlgOp::Attach {
            input: d,
            target: "iter".into(),
            value: Value::Nat(1),
        });
        let p = b.add(AlgOp::Project {
            input: l,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        b.add(AlgOp::Step {
            input: p,
            axis: Axis::Descendant,
            test: NodeTest::Element("a".into()),
        })
    }

    /// The unified pass agrees with itself: one analysis carries schema,
    /// keys, constants, cardinality and provenance for the same ops.
    #[test]
    fn one_pass_carries_every_property_family() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "doc.xml");
        let plan = b.finish(s);
        let pp = PlanProperties::analyze(&plan);
        assert_eq!(pp.columns(s), ["iter", "pos", "item"]);
        assert!(pp.keyed_by(s, &set(&["pos"])), "iter is constant");
        assert!(pp.constants(s).contains_key("iter"));
        assert_eq!(pp.doc(s), Some("doc.xml"));
        assert!(pp.rows(s) > 0.0);
        assert!(pp.order_free(s));
        assert!(pp.schema(s).is_some_and(|p| p.doc_ordered));
    }

    #[test]
    fn unreachable_operators_have_empty_properties() {
        let mut b = PlanBuilder::new();
        let keep = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1)]],
        });
        let orphan = b.add(AlgOp::Distinct { input: keep });
        let plan = b.finish(keep);
        let pp = PlanProperties::analyze(&plan);
        assert!(pp.schema(orphan).is_none());
        assert!(pp.columns(orphan).is_empty());
        assert!(pp.keys(orphan).is_empty());
        assert_eq!(pp.rows(orphan), 0.0);
        assert!(pp.doc(orphan).is_none());
    }

    #[test]
    fn doc_provenance_resets_at_constructors_and_merges_at_joins() {
        let mut b = PlanBuilder::new();
        let s = doc_step(&mut b, "d");
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let join = b.add(AlgOp::EquiJoin {
            left: s,
            right: lit,
            left_col: "iter".into(),
            right_col: "iter".into(),
        });
        let elem = b.add(AlgOp::ElemConstruct {
            loop_input: join,
            tag: "r".into(),
            content: s,
        });
        let plan = b.finish(elem);
        let pp = PlanProperties::analyze(&plan);
        assert_eq!(pp.doc(join), Some("d"), "join keeps the doc side's uri");
        assert_eq!(pp.doc(elem), None, "constructed nodes reset provenance");
    }

    #[test]
    fn provably_empty_sides_keep_union_properties() {
        // ∪(σ over a 1-row lit, empty lit): the empty side must not cost
        // the union the non-empty side's keys and constants.
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["a".into(), "v".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(7)]],
        });
        let sel = b.add(AlgOp::SelectEq {
            input: lit,
            column: "v".into(),
            value: Value::Nat(7),
        });
        let empty = b.add(AlgOp::Lit {
            columns: vec!["a".into(), "v".into()],
            rows: vec![],
        });
        let u = b.add(AlgOp::Union {
            left: sel,
            right: empty,
        });
        let plan = b.finish(u);
        let pp = PlanProperties::analyze(&plan);
        assert!(pp.provably_empty(empty));
        assert!(!pp.provably_empty(u));
        assert_eq!(
            pp.constants(u).get("v"),
            Some(&Some(Value::Nat(7))),
            "constant survives a provably empty union side"
        );
        assert!(
            !pp.keys(u).is_empty(),
            "keys survive a provably empty union side"
        );
    }
}
