//! Static plan verification.
//!
//! With six peephole rules and four join-graph-isolation rules composing
//! at fixpoint, a latent rewrite bug can only surface as a wrong query
//! answer.  This module catches it at *plan time* instead: after every
//! rule application the optimizer can check
//!
//! * **structural well-formedness** ([`verify_plan`]) — every child
//!   reference is in bounds, the plan is acyclic from the root, every
//!   column an operator references resolves in its input's inferred
//!   schema, literal rows have the declared arity, `IndexScan` sits on
//!   the step shape whose document actually backs the probed sidecar
//!   (the candidate-superset precondition), and the root produces at
//!   least one column; and
//! * **semantic invariants** ([`verify_rewrite`]) — a rewrite must
//!   preserve the root schema exactly and may only *strengthen* the
//!   statically proven key sets and constant columns captured in the
//!   pre-rewrite [`PlanDigest`].  (A rewrite that loses a key the
//!   analysis had proven would silently disable downstream rewrites that
//!   relied on it — and usually means rows were duplicated or dropped.)
//!
//! The optimizer runs these checks between rule applications in debug
//! builds unconditionally, and in release behind
//! `EngineOptions::verify_plans` / `PF_VERIFY=1`
//! (see [`crate::optimize::optimize_with_verify`]).  Error messages for
//! semantic failures embed the property-annotated plan dump
//! ([`crate::render::to_ascii_annotated`]) so a rejected rewrite is
//! debuggable from the message alone.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use pf_relational::ops::IndexProbe;
use pf_relational::Value;

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};
use crate::properties::PlanProperties;

/// A verification failure: which invariant broke, attributed to the
/// rewrite rule that broke it when checked via [`verify_rewrite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The rewrite rule being checked, if the failure surfaced in
    /// [`verify_rewrite`]; `None` for a standalone [`verify_plan`] call.
    pub rule: Option<String>,
    /// What broke, with operator ids and (for semantic failures) the
    /// annotated plan dump.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.rule {
            Some(rule) => write!(
                f,
                "plan verification failed after rule `{rule}`: {}",
                self.message
            ),
            None => write!(f, "plan verification failed: {}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(message: String) -> VerifyError {
    VerifyError {
        rule: None,
        message,
    }
}

/// The root-level properties a rewrite must preserve (schema) or may
/// only strengthen (keys, constants).  Capture one with [`digest`]
/// before mutating a plan, then check the mutated plan against it with
/// [`verify_rewrite`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDigest {
    /// Root output columns, in schema order.
    pub columns: Vec<String>,
    /// Key sets proven at the root.
    pub keys: Vec<BTreeSet<String>>,
    /// Constant columns proven at the root (with statically known
    /// values where available).
    pub constants: BTreeMap<String, Option<Value>>,
}

/// Capture the root-level property digest of `plan`.  The plan must be
/// well-formed (run [`verify_plan`] first when in doubt).
pub fn digest(plan: &Plan) -> PlanDigest {
    let props = PlanProperties::analyze(plan);
    let root = plan.root();
    PlanDigest {
        columns: props.columns(root).to_vec(),
        keys: props.keys(root).to_vec(),
        constants: props.constants(root).clone(),
    }
}

/// Check `plan` for structural well-formedness.  See the module docs
/// for the invariant list.  Cheap enough to run after every rewrite:
/// one arena scan, one DFS, and one property pass.
pub fn verify_plan(plan: &Plan) -> Result<(), VerifyError> {
    let n = plan.ops().len();
    // (a) Child bounds over the whole arena — before anything walks the
    // plan (`Plan::reachable` indexes by child id and would panic on a
    // dangling edge).
    for (id, op) in plan.ops().iter().enumerate() {
        for child in op.children() {
            if child >= n {
                return Err(err(format!(
                    "op #{id} {} references child #{child}, but the arena has {n} operators",
                    op.symbol()
                )));
            }
        }
    }
    if plan.root() >= n {
        return Err(err(format!(
            "root #{} out of bounds (arena has {n} operators)",
            plan.root()
        )));
    }
    // (b) Acyclicity from the root: iterative DFS with on-stack marks.
    const WHITE: u8 = 0;
    const ON_STACK: u8 = 1;
    const DONE: u8 = 2;
    let mut state = vec![WHITE; n];
    let mut stack: Vec<(OpId, usize)> = vec![(plan.root(), 0)];
    state[plan.root()] = ON_STACK;
    while let Some((id, child_idx)) = stack.pop() {
        let children = plan.op(id).children();
        if child_idx >= children.len() {
            state[id] = DONE;
            continue;
        }
        stack.push((id, child_idx + 1));
        let child = children[child_idx];
        match state[child] {
            ON_STACK => {
                return Err(err(format!(
                    "cycle through op #{child} {} (reached again from #{id} {})",
                    plan.op(child).symbol(),
                    plan.op(id).symbol()
                )));
            }
            WHITE => {
                state[child] = ON_STACK;
                stack.push((child, 0));
            }
            _ => {}
        }
    }
    // (c) Literal-table invariants — before the property pass, which
    // scans literal rows for constants and would index out of bounds on
    // a ragged row.
    for (id, op) in plan.ops().iter().enumerate() {
        if let AlgOp::Lit { columns, rows } = op {
            let unique: HashSet<&String> = columns.iter().collect();
            if unique.len() != columns.len() {
                return Err(err(format!(
                    "op #{id} lit: duplicate column names in {columns:?}"
                )));
            }
            for (r, row) in rows.iter().enumerate() {
                if row.len() != columns.len() {
                    return Err(err(format!(
                        "op #{id} lit: row {r} has {} values for {} columns",
                        row.len(),
                        columns.len()
                    )));
                }
            }
        }
    }
    // (d) Per-operator checks over the (now provably safe to compute)
    // inferred schemas.
    let props = PlanProperties::analyze(plan);
    let resolve = |of: OpId, col: &str, what: &str, at: OpId| -> Result<(), VerifyError> {
        if props.columns(of).iter().any(|c| c == col) {
            Ok(())
        } else {
            Err(err(format!(
                "op #{at} {}: {what} column `{col}` does not resolve in input #{of} (columns: {:?})",
                plan.op(at).symbol(),
                props.columns(of)
            )))
        }
    };
    let fresh = |of: OpId, col: &str, at: OpId| -> Result<(), VerifyError> {
        if props.columns(of).iter().any(|c| c == col) {
            Err(err(format!(
                "op #{at} {}: target column `{col}` already exists in input #{of}",
                plan.op(at).symbol()
            )))
        } else {
            Ok(())
        }
    };
    let same_columns = |left: OpId, right: OpId, at: OpId| -> Result<(), VerifyError> {
        let l: BTreeSet<&String> = props.columns(left).iter().collect();
        let r: BTreeSet<&String> = props.columns(right).iter().collect();
        if l == r {
            Ok(())
        } else {
            Err(err(format!(
                "op #{at} {}: input schemas disagree ({:?} vs {:?})",
                plan.op(at).symbol(),
                props.columns(left),
                props.columns(right)
            )))
        }
    };
    for id in plan.reachable() {
        match plan.op(id) {
            // Literal invariants were checked in pass (c) above.
            AlgOp::Lit { .. } | AlgOp::Doc { .. } => {}
            AlgOp::Project { input, columns } => {
                let mut targets: HashSet<&String> = HashSet::new();
                for (src, tgt) in columns {
                    resolve(*input, src, "source", id)?;
                    if !targets.insert(tgt) {
                        return Err(err(format!("op #{id} π: duplicate target column `{tgt}`")));
                    }
                }
            }
            AlgOp::Select { input, column } | AlgOp::SelectEq { input, column, .. } => {
                resolve(*input, column, "predicate", id)?;
            }
            AlgOp::Distinct { .. } => {}
            AlgOp::Union { left, right } | AlgOp::Difference { left, right } => {
                same_columns(*left, *right, id)?;
            }
            AlgOp::EquiJoin {
                left,
                right,
                left_col,
                right_col,
            }
            | AlgOp::ThetaJoin {
                left,
                right,
                left_col,
                right_col,
                ..
            } => {
                resolve(*left, left_col, "left join", id)?;
                resolve(*right, right_col, "right join", id)?;
            }
            AlgOp::Cross { .. } => {}
            AlgOp::RowNum {
                input,
                target,
                order_by,
                partition,
            } => {
                fresh(*input, target, id)?;
                for spec in order_by {
                    resolve(*input, &spec.column, "order-by", id)?;
                }
                if let Some(p) = partition {
                    resolve(*input, p, "partition", id)?;
                }
            }
            AlgOp::BinaryMap {
                input,
                target,
                left,
                right,
                ..
            } => {
                fresh(*input, target, id)?;
                resolve(*input, left, "left operand", id)?;
                resolve(*input, right, "right operand", id)?;
            }
            AlgOp::UnaryMap {
                input,
                target,
                source,
                ..
            } => {
                fresh(*input, target, id)?;
                resolve(*input, source, "operand", id)?;
            }
            AlgOp::Attach { input, target, .. } => {
                fresh(*input, target, id)?;
            }
            AlgOp::Aggregate {
                input,
                group,
                value,
                ..
            } => {
                resolve(*input, group, "group", id)?;
                resolve(*input, value, "aggregated", id)?;
            }
            AlgOp::Step { input, .. } => {
                resolve(*input, "iter", "context", id)?;
                resolve(*input, "item", "context", id)?;
            }
            AlgOp::IndexScan {
                input, uri, probe, ..
            } => {
                // Candidate-superset precondition: the sidecar consulted
                // must belong to the document that produced the rows
                // being filtered, and the base must be the step shape
                // whose rows the probe understands — otherwise candidate
                // sets are not supersets of the true matches and the
                // residual predicate cannot repair the loss.
                match plan.op(*input) {
                    AlgOp::Step { .. } | AlgOp::DocOrder { .. } => {}
                    other => {
                        return Err(err(format!(
                            "op #{id} idx: input #{input} is {} — an IndexScan may only \
                             filter a step or doc-order output",
                            other.symbol()
                        )));
                    }
                }
                match props.doc(*input) {
                    Some(doc) if doc == uri => {}
                    got => {
                        return Err(err(format!(
                            "op #{id} idx: probes indexes of `{uri}` but input #{input} \
                             has document provenance {got:?}"
                        )));
                    }
                }
                if let IndexProbe::ValueCmp { value, .. } = probe {
                    if matches!(value, Value::Dbl(d) if d.is_nan())
                        || matches!(value, Value::Node(_))
                    {
                        return Err(err(format!(
                            "op #{id} idx: unanswerable probe constant {value:?}"
                        )));
                    }
                }
            }
            AlgOp::DocOrder { input } => {
                resolve(*input, "iter", "ddo", id)?;
                resolve(*input, "item", "ddo", id)?;
            }
            AlgOp::FnData { input } | AlgOp::FnRoot { input } => {
                resolve(*input, "item", "atomization", id)?;
            }
            AlgOp::Ebv { input } => {
                resolve(*input, "iter", "ebv", id)?;
                resolve(*input, "item", "ebv", id)?;
            }
            AlgOp::ElemConstruct {
                loop_input,
                content,
                ..
            } => {
                resolve(*loop_input, "iter", "loop", id)?;
                for col in ["iter", "pos", "item"] {
                    resolve(*content, col, "content", id)?;
                }
            }
            AlgOp::AttrConstruct {
                loop_input,
                content,
                ..
            }
            | AlgOp::TextConstruct {
                loop_input,
                content,
            } => {
                resolve(*loop_input, "iter", "loop", id)?;
                for col in ["iter", "pos", "item"] {
                    resolve(*content, col, "content", id)?;
                }
            }
            AlgOp::Sort { input, by } => {
                for spec in by {
                    resolve(*input, &spec.column, "sort", id)?;
                }
            }
        }
    }
    if props.columns(plan.root()).is_empty() {
        return Err(err("root produces no columns".into()));
    }
    Ok(())
}

/// Check that the (already mutated) `after` plan is well-formed and that
/// the rewrite that produced it preserved the root schema and only
/// strengthened the proven keys and constants relative to `before`
/// (captured with [`digest`] pre-rewrite).  `rule` names the rewrite for
/// the error message.
pub fn verify_rewrite(rule: &str, before: &PlanDigest, after: &Plan) -> Result<(), VerifyError> {
    let tag = |mut e: VerifyError| {
        e.rule = Some(rule.to_string());
        e
    };
    verify_plan(after).map_err(tag)?;
    let props = PlanProperties::analyze(after);
    let root = after.root();
    let semantic = |message: String| {
        tag(err(format!(
            "{message}\nannotated plan:\n{}",
            crate::render::to_ascii_annotated(after)
        )))
    };
    if props.columns(root) != before.columns.as_slice() {
        return Err(semantic(format!(
            "root schema changed: {:?} -> {:?}",
            before.columns,
            props.columns(root)
        )));
    }
    for key in &before.keys {
        if !props.keyed_by(root, key) {
            return Err(semantic(format!(
                "root key {key:?} was proven before the rewrite but not after \
                 (keys now: {:?})",
                props.keys(root)
            )));
        }
    }
    let constants = props.constants(root);
    for (col, val) in &before.constants {
        match constants.get(col) {
            None => {
                return Err(semantic(format!(
                    "column `{col}` was proven constant before the rewrite but not after \
                     (constants now: {:?})",
                    constants
                )));
            }
            Some(after_val) => {
                // A rewrite may *lose track* of the value (e.g. pushdown
                // can leave an empty literal input whose columns are
                // vacuously constant with no scannable value) — that is
                // an analysis weakening, not a wrong plan.  But two
                // *known* values that disagree mean rows changed.
                if let (Some(v), Some(after)) = (val, after_val) {
                    if after != v {
                        return Err(semantic(format!(
                            "constant column `{col}` changed value: {v:?} -> {after:?}"
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;

    fn small_lit(b: &mut PlanBuilder) -> OpId {
        b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(7)]],
        })
    }

    #[test]
    fn accepts_a_well_formed_plan() {
        let mut b = PlanBuilder::new();
        let l = small_lit(&mut b);
        let d = b.add(AlgOp::Distinct { input: l });
        let plan = b.finish(d);
        assert_eq!(verify_plan(&plan), Ok(()));
    }

    #[test]
    fn rejects_dangling_child_references() {
        let mut b = PlanBuilder::new();
        let l = small_lit(&mut b);
        b.add(AlgOp::Distinct { input: 99 });
        let plan = b.finish(l);
        let e = verify_plan(&plan).unwrap_err();
        assert!(e.message.contains("child #99"), "{e}");
    }

    #[test]
    fn rejects_cycles() {
        // A forward reference the builder happily accepts: op 0 will be
        // Distinct{input: 1}, op 1 Distinct{input: 0}.
        let mut b = PlanBuilder::new();
        let a = b.add(AlgOp::Distinct { input: 1 });
        let c = b.add(AlgOp::Distinct { input: a });
        let plan = b.finish(c);
        let e = verify_plan(&plan).unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn rejects_unresolvable_columns() {
        let mut b = PlanBuilder::new();
        let l = small_lit(&mut b);
        let s = b.add(AlgOp::Select {
            input: l,
            column: "missing".into(),
        });
        let plan = b.finish(s);
        let e = verify_plan(&plan).unwrap_err();
        assert!(e.message.contains("`missing`"), "{e}");
    }

    #[test]
    fn rewrite_digest_catches_schema_and_key_loss() {
        let mut b = PlanBuilder::new();
        let l = small_lit(&mut b);
        let plan = b.finish(l);
        let before = digest(&plan);

        // Identical plan: fine.
        assert_eq!(verify_rewrite("noop", &before, &plan), Ok(()));

        // Root schema reordered: rejected.
        let mut b = PlanBuilder::new();
        let l2 = b.add(AlgOp::Lit {
            columns: vec!["pos".into(), "iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Nat(1), Value::Int(7)]],
        });
        let swapped = b.finish(l2);
        let e = verify_rewrite("swap", &before, &swapped).unwrap_err();
        assert_eq!(e.rule.as_deref(), Some("swap"));
        assert!(e.message.contains("root schema changed"), "{e}");

        // Keys weakened (two identical rows): rejected, message carries
        // the annotated dump.
        let mut b = PlanBuilder::new();
        let l3 = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "item".into()],
            rows: vec![
                vec![Value::Nat(1), Value::Nat(1), Value::Int(7)],
                vec![Value::Nat(1), Value::Nat(1), Value::Int(7)],
            ],
        });
        let dup = b.finish(l3);
        let e = verify_rewrite("dup", &before, &dup).unwrap_err();
        assert!(e.message.contains("proven before the rewrite"), "{e}");
        assert!(e.message.contains("annotated plan"), "{e}");
    }
}
