//! # pf-algebra — the Table 1 relational algebra
//!
//! Pathfinder compiles XQuery into plans over a very explicit,
//! "assembly-style" relational algebra (Table 1 of the paper).  This crate
//! defines that algebra as a DAG of logical operators, infers schemas and
//! order/duplicate properties, applies the peephole-style optimizations the
//! paper refers to ([Grust, XIME-P 2005]), counts operators (the paper notes
//! XMark Q8 compiles to a ~120 operator DAG before optimization) and renders
//! plans as ASCII trees or Graphviz DOT — the "look under the hood" hooks of
//! the demonstration setup (Section 4).
//!
//! The algebra deliberately exploits restrictions that hold for compiled
//! plans: all joins are equi-joins (a single explicit theta-join exists for
//! the Q11/Q12-style value joins), π never eliminates duplicates, and all
//! unions are disjoint.
//!
//! Execution of these plans lives in `pf-engine`; this crate is purely the
//! logical layer.

#![forbid(unsafe_code)]

pub mod ops;
pub mod optimize;
pub mod physical;
pub mod plan;
pub mod properties;
pub mod render;
pub mod schema;
pub mod verify;

pub use ops::{AlgOp, SortSpec};
pub use optimize::{
    optimize, optimize_with, optimize_with_verify, CardEstimate, Isolation, NoStats,
    OptimizeReport, OptimizerLevel, StatsSource,
};
pub use physical::{PhysKind, PhysNode, PhysNodeId, PhysicalBooks, PhysicalPlan};
pub use plan::{OpId, Plan, PlanBuilder, ReadySetBooks};
pub use properties::PlanProperties;
pub use render::{to_ascii, to_ascii_annotated, to_dot};
pub use schema::{infer_schema, Properties};
pub use verify::{digest, verify_plan, verify_rewrite, PlanDigest, VerifyError};
