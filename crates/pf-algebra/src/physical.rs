//! The physical plan layer: fused operator pipelines over the logical DAG.
//!
//! A [`Plan`] is a DAG of *logical* operators; interpreting it one operator
//! at a time materializes a table per node.  The loop-lifting compilation
//! scheme deliberately emits long chains of cheap operators (π, σ, attach,
//! ⊙) whose intermediate exists only to feed a single consumer — the
//! paper's MonetDB backend wins because its BAT kernels stream through such
//! chains without materialization.  [`PhysicalPlan::compile`] recovers that
//! property: it walks the scheduler books once and greedily groups maximal
//! single-consumer chains of *fusable* operators into [`Pipeline`] nodes,
//! which the executor evaluates with `pf-relational`'s fused kernel in one
//! pass — zero intermediate tables.
//!
//! **Fusable** operators (all unary, all cheap): π (project/rename), σ
//! (both select forms), attach, the ⊙ maps, atomization (`fn:data`), and
//! δ (distinct — a pure keep-first selection-vector pass).  Everything
//! else is a **pipeline breaker**: joins, cross products, row numbering,
//! sorts, aggregates, union/difference, steps, document order, `fn:root`,
//! `ebv`, the node constructors, and the leaves.  A fusable operator whose
//! result has more than one consumer also breaks the chain — the shared
//! intermediate must materialize so both consumers can read it (the plan
//! root likewise always materializes: its table *is* the query result).
//!
//! The physical plan is compiled **once per (cached) logical plan** and is
//! itself scheduler-ready: [`PhysicalPlan::books`] derives the ready-set
//! bookkeeping at node granularity, so the executor dispatches whole
//! pipelines as single work units on both its sequential and parallel
//! paths.  Compiling with `fusion = false` yields one singleton node per
//! operator — the exact pre-fusion interpretation order — which is the
//! A/B escape hatch behind `EngineOptions::fusion` / `PF_FUSION=0`.
//!
//! [`Pipeline`]: PhysKind::Pipeline

use pf_relational::ops::FusedStep;

use crate::ops::AlgOp;
use crate::plan::{OpId, Plan};

/// Identifier of a node within a [`PhysicalPlan`] (index into the node
/// list, which is stored in topological order).
pub type PhysNodeId = usize;

/// What a physical node does.
#[derive(Debug, Clone)]
pub enum PhysKind {
    /// A pipeline breaker: one logical operator, interpreted as before.
    Breaker,
    /// A fused chain of ≥ 2 single-consumer fusable operators.  `ops`
    /// lists the covered logical operators in execution order (head first,
    /// tail last — the tail is the node's [`output`](PhysNode::output));
    /// `steps` is the pre-compiled kernel program for
    /// [`pf_relational::ops::run_pipeline`].
    Pipeline {
        /// Covered logical operators, head → tail.
        ops: Vec<OpId>,
        /// The fused kernel program (one entry per covered operator).
        steps: Vec<FusedStep>,
    },
}

/// One schedulable unit of a [`PhysicalPlan`].
#[derive(Debug, Clone)]
pub struct PhysNode {
    /// Breaker or fused pipeline.
    pub kind: PhysKind,
    /// External input operators (with multiplicity — a self-cross breaker
    /// lists its child twice).  For a pipeline this is the head's single
    /// input; interior chain edges are internal and never appear.
    pub inputs: Vec<OpId>,
    /// The operator whose result this node publishes (the breaker's own id
    /// / the pipeline's tail).
    pub output: OpId,
}

impl PhysNode {
    /// Number of logical operators this node covers.
    pub fn op_count(&self) -> usize {
        match &self.kind {
            PhysKind::Breaker => 1,
            PhysKind::Pipeline { ops, .. } => ops.len(),
        }
    }

    /// `true` for fused pipelines.
    pub fn is_pipeline(&self) -> bool {
        matches!(self.kind, PhysKind::Pipeline { .. })
    }
}

/// A compiled physical plan: the logical DAG regrouped into schedulable
/// nodes (pipeline breakers + fused pipelines) in topological order.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    nodes: Vec<PhysNode>,
    /// Producing node per operator id (`None` for unreachable operators
    /// and for pipeline interiors, whose results never materialize).
    producer: Vec<Option<PhysNodeId>>,
    /// The node publishing the plan root's result.
    root_node: PhysNodeId,
    /// Total logical operators covered (= reachable plan size).
    op_count: usize,
    /// Operators that run inside fused pipelines.
    fused_ops: usize,
    /// Intermediate tables the pipelines never allocate (Σ len−1).
    tables_elided: usize,
    /// Arena size of the logical plan this was compiled from (sanity
    /// checked by the executor).
    logical_len: usize,
}

/// Is `op` eligible for fusion into a pipeline?
fn is_fusable(op: &AlgOp) -> bool {
    matches!(
        op,
        AlgOp::Project { .. }
            | AlgOp::Select { .. }
            | AlgOp::SelectEq { .. }
            | AlgOp::Attach { .. }
            | AlgOp::UnaryMap { .. }
            | AlgOp::BinaryMap { .. }
            | AlgOp::FnData { .. }
            | AlgOp::Distinct { .. }
    )
}

/// Translate a fusable operator into its kernel step (`None` for
/// breakers).
fn fused_step(op: &AlgOp) -> Option<FusedStep> {
    match op {
        AlgOp::Project { columns, .. } => Some(FusedStep::Project {
            columns: columns.clone(),
        }),
        AlgOp::Select { column, .. } => Some(FusedStep::SelectTrue {
            column: column.clone(),
        }),
        AlgOp::SelectEq { column, value, .. } => Some(FusedStep::SelectEq {
            column: column.clone(),
            value: value.clone(),
        }),
        AlgOp::Attach { target, value, .. } => Some(FusedStep::Attach {
            target: target.clone(),
            value: value.clone(),
        }),
        AlgOp::UnaryMap {
            target, op, source, ..
        } => Some(FusedStep::MapUnary {
            target: target.clone(),
            op: *op,
            source: source.clone(),
        }),
        AlgOp::BinaryMap {
            target,
            left,
            op,
            right,
            ..
        } => Some(FusedStep::MapBinary {
            target: target.clone(),
            left: left.clone(),
            op: *op,
            right: right.clone(),
        }),
        AlgOp::FnData { .. } => Some(FusedStep::MapAtomize {
            column: "item".into(),
        }),
        AlgOp::Distinct { .. } => Some(FusedStep::Distinct),
        _ => None,
    }
}

/// Does `step` encode exactly `op`?  Allocation-free field-by-field
/// comparison (the verification counterpart of [`fused_step`]).
fn step_matches(op: &AlgOp, step: &FusedStep) -> bool {
    match (op, step) {
        (AlgOp::Project { columns, .. }, FusedStep::Project { columns: c }) => columns == c,
        (AlgOp::Select { column, .. }, FusedStep::SelectTrue { column: c }) => column == c,
        (
            AlgOp::SelectEq { column, value, .. },
            FusedStep::SelectEq {
                column: c,
                value: v,
            },
        ) => column == c && value == v,
        (
            AlgOp::Attach { target, value, .. },
            FusedStep::Attach {
                target: t,
                value: v,
            },
        ) => target == t && value == v,
        (
            AlgOp::UnaryMap {
                target, op, source, ..
            },
            FusedStep::MapUnary {
                target: t,
                op: o,
                source: s,
            },
        ) => target == t && op == o && source == s,
        (
            AlgOp::BinaryMap {
                target,
                left,
                op,
                right,
                ..
            },
            FusedStep::MapBinary {
                target: t,
                left: l,
                op: o,
                right: r,
            },
        ) => target == t && left == l && op == o && right == r,
        (AlgOp::FnData { .. }, FusedStep::MapAtomize { column }) => column == "item",
        (AlgOp::Distinct { .. }, FusedStep::Distinct) => true,
        _ => false,
    }
}

impl PhysicalPlan {
    /// Compile `plan` into a physical plan.
    ///
    /// With `fusion` enabled, maximal single-consumer chains of fusable
    /// operators become [`PhysKind::Pipeline`] nodes; singleton chains and
    /// everything else stay [`PhysKind::Breaker`]s.  With `fusion`
    /// disabled every reachable operator becomes its own breaker — the
    /// node order is then exactly the logical topological order, so the
    /// executor reproduces the unfused interpretation step for step.
    pub fn compile(plan: &Plan, fusion: bool) -> PhysicalPlan {
        let books = plan.ready_set_books();
        let n = plan.ops().len();
        let mut absorbed = vec![false; n];
        let mut producer: Vec<Option<PhysNodeId>> = vec![None; n];
        let mut nodes: Vec<PhysNode> = Vec::new();
        let mut fused_ops = 0usize;
        let mut tables_elided = 0usize;

        for &id in &books.topo_order {
            if absorbed[id] {
                continue;
            }
            let op = plan.op(id);
            if fusion && is_fusable(op) {
                // `id` is a chain head: its input is either a breaker or a
                // shared / already-absorbed fusable result (otherwise this
                // op would have been absorbed when its child was visited —
                // children precede parents in topological order).  Extend
                // the chain upward while the current tail's result has
                // exactly one consumer and that consumer is fusable.  The
                // root never extends a chain as an interior link: its
                // result is the query answer (the count check sees its
                // synthetic final consumer, which may be its only one —
                // never look up a consumer edge for it).
                let mut ops = vec![id];
                let mut tail = id;
                while tail != plan.root() && books.consumer_counts[tail] == 1 {
                    let parent = books.consumers[tail][0];
                    if !is_fusable(plan.op(parent)) {
                        break;
                    }
                    absorbed[parent] = true;
                    ops.push(parent);
                    tail = parent;
                }
                if ops.len() >= 2 {
                    let steps: Vec<FusedStep> = ops
                        .iter()
                        .map(|&o| fused_step(plan.op(o)).expect("chain members are fusable"))
                        .collect();
                    let inputs = plan.op(id).children();
                    fused_ops += ops.len();
                    tables_elided += ops.len() - 1;
                    producer[tail] = Some(nodes.len());
                    nodes.push(PhysNode {
                        kind: PhysKind::Pipeline { ops, steps },
                        inputs,
                        output: tail,
                    });
                    continue;
                }
            }
            producer[id] = Some(nodes.len());
            nodes.push(PhysNode {
                kind: PhysKind::Breaker,
                inputs: op.children(),
                output: id,
            });
        }

        let root_node = producer[plan.root()].expect("the root is always reachable");
        PhysicalPlan {
            nodes,
            producer,
            root_node,
            op_count: books.topo_order.len(),
            fused_ops,
            tables_elided,
            logical_len: n,
        }
    }

    /// The schedulable nodes, in topological order (a node's inputs are
    /// published by earlier nodes).
    pub fn nodes(&self) -> &[PhysNode] {
        &self.nodes
    }

    /// The node that publishes the plan root's result.
    pub fn root_node(&self) -> PhysNodeId {
        self.root_node
    }

    /// The node publishing operator `id`'s result (`None` for unreachable
    /// operators and pipeline interiors).
    pub fn producer_of(&self, id: OpId) -> Option<PhysNodeId> {
        self.producer.get(id).copied().flatten()
    }

    /// Total logical operators covered (= reachable plan size).
    pub fn op_count(&self) -> usize {
        self.op_count
    }

    /// Logical operators that run inside fused pipelines.
    pub fn fused_ops(&self) -> usize {
        self.fused_ops
    }

    /// Intermediate tables fusion elides (one per interior chain edge).
    pub fn tables_elided(&self) -> usize {
        self.tables_elided
    }

    /// Number of physical pipelines (nodes covering ≥ 2 operators).
    pub fn pipeline_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_pipeline()).count()
    }

    /// Arena size of the logical plan this was compiled from — executors
    /// cross-check it against the plan they are handed.
    pub fn logical_len(&self) -> usize {
        self.logical_len
    }

    /// Is this physical plan a valid compilation of `plan`?
    ///
    /// Checks the complete wiring structurally: every breaker's recorded
    /// inputs are its operator's children in `plan`, every pipeline is a
    /// genuine chain in `plan` whose pre-compiled kernel steps match the
    /// covered operators parameter for parameter.  A plan that passes is
    /// safe to execute against this physical plan — breakers evaluate
    /// `plan`'s own operators, and the fused steps are verified equal to
    /// `plan`'s.  Executors call this per run; it is O(operators) with no
    /// allocations beyond the children lists.
    pub fn matches(&self, plan: &Plan) -> bool {
        if self.logical_len != plan.ops().len() {
            return false;
        }
        self.nodes.iter().all(|node| match &node.kind {
            PhysKind::Breaker => plan.op(node.output).children() == node.inputs,
            PhysKind::Pipeline { ops, steps } => {
                ops.len() == steps.len()
                    && ops.last() == Some(&node.output)
                    && plan.op(ops[0]).children() == node.inputs
                    && ops.windows(2).all(|w| plan.op(w[1]).children() == [w[0]])
                    && ops
                        .iter()
                        .zip(steps)
                        .all(|(&op, step)| step_matches(plan.op(op), step))
            }
        })
    }

    /// The ready-set bookkeeping at physical-node granularity, derived in
    /// one pass (the node-level analogue of [`Plan::ready_set_books`]).
    pub fn books(&self) -> PhysicalBooks {
        let n = self.nodes.len();
        let mut input_edges = vec![0usize; n];
        let mut consumers: Vec<Vec<PhysNodeId>> = vec![Vec::new(); n];
        let mut result_consumers = vec![0usize; self.producer.len()];
        let mut levels = vec![0usize; n];
        let mut level_widths: Vec<usize> = Vec::new();
        for (node_id, node) in self.nodes.iter().enumerate() {
            input_edges[node_id] = node.inputs.len();
            let mut depth = 0usize;
            for &input in &node.inputs {
                let producer =
                    self.producer[input].expect("node inputs are published by earlier nodes");
                consumers[producer].push(node_id);
                result_consumers[input] += 1;
                depth = depth.max(levels[producer] + 1);
            }
            levels[node_id] = depth;
            if depth >= level_widths.len() {
                level_widths.resize(depth + 1, 0);
            }
            level_widths[depth] += 1;
        }
        // The synthetic final consumer: the root's result is the query
        // answer and must never be evicted.
        result_consumers[self.nodes[self.root_node].output] += 1;
        PhysicalBooks {
            input_edges,
            consumers,
            result_consumers,
            levels,
            level_widths,
        }
    }
}

/// Scheduler bookkeeping over one [`PhysicalPlan`], node-granular: the
/// executor's work units are physical nodes, but eviction still happens
/// per published *result* (operator id), because that is what the slot
/// arena holds.
#[derive(Debug, Clone)]
pub struct PhysicalBooks {
    /// Unmet input edges per node (ready when 0).
    pub input_edges: Vec<usize>,
    /// Consumer edges per node: which nodes read this node's output (per
    /// edge — a self-cross consumer appears twice).
    pub consumers: Vec<Vec<PhysNodeId>>,
    /// Remaining consumer edges per published operator result, indexed by
    /// [`OpId`], including the synthetic final consumer of the root.
    pub result_consumers: Vec<usize>,
    /// Dependency level per node (leaves are 0).
    pub levels: Vec<usize>,
    /// Nodes per dependency level; the maximum bounds the useful worker
    /// count, exactly like [`crate::ReadySetBooks::width`].
    pub level_widths: Vec<usize>,
}

impl PhysicalBooks {
    /// The widest dependency level — an upper bound on how many nodes can
    /// usefully evaluate concurrently.
    pub fn width(&self) -> usize {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pf_relational::ops::{BinaryOp, CmpOp};
    use pf_relational::Value;

    /// lit → attach → map → select → project → sort(root): the four
    /// middle operators form one pipeline between two breakers.
    fn chain_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Int(10)]],
        });
        let attach = b.add(AlgOp::Attach {
            input: lit,
            target: "limit".into(),
            value: Value::Int(5),
        });
        let map = b.add(AlgOp::BinaryMap {
            input: attach,
            target: "keep".into(),
            left: "item".into(),
            op: BinaryOp::Cmp(CmpOp::Gt),
            right: "limit".into(),
        });
        let select = b.add(AlgOp::Select {
            input: map,
            column: "keep".into(),
        });
        let project = b.add(AlgOp::Project {
            input: select,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        let sort = b.add(AlgOp::Sort {
            input: project,
            by: vec![crate::SortSpec::asc("iter")],
        });
        b.finish(sort)
    }

    #[test]
    fn single_consumer_chains_fuse_between_breakers() {
        let plan = chain_plan();
        let phys = PhysicalPlan::compile(&plan, true);
        assert_eq!(phys.nodes().len(), 3, "lit + pipeline + sort");
        assert_eq!(phys.pipeline_count(), 1);
        assert_eq!(phys.fused_ops(), 4);
        assert_eq!(phys.tables_elided(), 3);
        assert_eq!(phys.op_count(), 6);
        let pipeline = &phys.nodes()[1];
        assert!(pipeline.is_pipeline());
        assert_eq!(pipeline.inputs, vec![0], "external input is the literal");
        assert_eq!(pipeline.output, 4, "tail is the projection");
        let PhysKind::Pipeline { ops, steps } = &pipeline.kind else {
            panic!("expected a pipeline");
        };
        assert_eq!(ops, &vec![1, 2, 3, 4]);
        assert_eq!(steps.len(), 4);
        assert!(matches!(steps[0], FusedStep::Attach { .. }));
        assert!(matches!(steps[3], FusedStep::Project { .. }));
    }

    #[test]
    fn fusion_off_yields_one_breaker_per_operator_in_topo_order() {
        let plan = chain_plan();
        let phys = PhysicalPlan::compile(&plan, false);
        assert_eq!(phys.nodes().len(), plan.operator_count());
        assert!(phys.nodes().iter().all(|n| !n.is_pipeline()));
        assert_eq!(phys.fused_ops(), 0);
        assert_eq!(phys.tables_elided(), 0);
        let order: Vec<OpId> = phys.nodes().iter().map(|n| n.output).collect();
        assert_eq!(order, plan.reachable());
    }

    #[test]
    fn shared_results_break_chains() {
        // lit → project; the projection feeds TWO selects that join back:
        // the projection's result is shared, so nothing fuses with it from
        // above, and each single fusable op stays a breaker (singleton
        // chains do not become pipelines).
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: vec![vec![Value::Nat(1), Value::Bool(true)]],
        });
        let project = b.add(AlgOp::Project {
            input: lit,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("item".into(), "item".into()),
            ],
        });
        let s1 = b.add(AlgOp::Select {
            input: project,
            column: "item".into(),
        });
        let s2 = b.add(AlgOp::SelectEq {
            input: project,
            column: "item".into(),
            value: Value::Bool(true),
        });
        let cross = b.add(AlgOp::Cross {
            left: s1,
            right: s2,
        });
        let plan = b.finish(cross);
        let phys = PhysicalPlan::compile(&plan, true);
        assert_eq!(phys.pipeline_count(), 0);
        assert_eq!(phys.tables_elided(), 0);
        assert_eq!(phys.nodes().len(), 5);
    }

    #[test]
    fn the_root_can_be_a_pipeline_tail_but_not_an_interior() {
        // lit → attach → project(root): attach+project fuse, the root is
        // the tail and its result materializes.
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let attach = b.add(AlgOp::Attach {
            input: lit,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let project = b.add(AlgOp::Project {
            input: attach,
            columns: vec![("iter".into(), "iter".into()), ("pos".into(), "pos".into())],
        });
        let plan = b.finish(project);
        let phys = PhysicalPlan::compile(&plan, true);
        assert_eq!(phys.pipeline_count(), 1);
        assert_eq!(phys.nodes()[phys.root_node()].output, project);
        assert!(phys.nodes()[phys.root_node()].is_pipeline());

        // Same chain, but the root is the *attach*: nothing may fuse
        // through the root (its table is the query answer).
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let attach = b.add(AlgOp::Attach {
            input: lit,
            target: "pos".into(),
            value: Value::Nat(1),
        });
        let _orphan = b.add(AlgOp::Project {
            input: attach,
            columns: vec![("iter".into(), "iter".into())],
        });
        let plan = b.finish(attach);
        let phys = PhysicalPlan::compile(&plan, true);
        assert_eq!(phys.pipeline_count(), 0);
    }

    #[test]
    fn books_agree_with_node_structure() {
        let plan = chain_plan();
        let phys = PhysicalPlan::compile(&plan, true);
        let books = phys.books();
        assert_eq!(books.input_edges, vec![0, 1, 1]);
        assert_eq!(books.consumers[0], vec![1]);
        assert_eq!(books.consumers[1], vec![2]);
        assert!(books.consumers[2].is_empty());
        // Result consumers: the literal feeds the pipeline, the pipeline
        // tail feeds the sort, the root gets the synthetic consumer.
        assert_eq!(books.result_consumers[0], 1);
        assert_eq!(books.result_consumers[4], 1);
        assert_eq!(books.result_consumers[plan.root()], 1);
        // Interior chain results never materialize → no consumers.
        assert_eq!(books.result_consumers[1], 0);
        assert_eq!(books.result_consumers[2], 0);
        assert_eq!(books.levels, vec![0, 1, 2]);
        assert_eq!(books.width(), 1);
    }

    #[test]
    fn fusion_off_books_match_the_logical_books() {
        let plan = chain_plan();
        let phys = PhysicalPlan::compile(&plan, false);
        let books = phys.books();
        let logical = plan.ready_set_books();
        // With singleton nodes in topo order, node-granular bookkeeping
        // collapses onto the logical bookkeeping.
        let node_output: Vec<OpId> = phys.nodes().iter().map(|n| n.output).collect();
        for (node_id, &op) in node_output.iter().enumerate() {
            assert_eq!(books.input_edges[node_id], logical.input_edges[op]);
            assert_eq!(books.result_consumers[op], logical.consumer_counts[op]);
        }
        assert_eq!(books.width(), logical.width());
    }

    #[test]
    fn matches_accepts_its_source_plan_and_rejects_others() {
        let plan = chain_plan();
        let phys = PhysicalPlan::compile(&plan, true);
        assert!(phys.matches(&plan));
        assert!(PhysicalPlan::compile(&plan, false).matches(&plan));

        // A same-size plan with one fused parameter changed is rejected.
        let mut other = chain_plan();
        if let AlgOp::Attach { value, .. } = &mut other.ops_mut()[1] {
            *value = Value::Int(99);
        }
        assert!(
            !phys.matches(&other),
            "changed fused constant must not match"
        );

        // A same-size plan with different wiring is rejected.
        let mut rewired = chain_plan();
        rewired.ops_mut()[3].replace_child(0, 1);
        assert!(!phys.matches(&rewired), "rewired child must not match");

        // A different arena size is rejected outright.
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![],
        });
        assert!(!phys.matches(&b.finish(lit)));
    }

    #[test]
    fn self_referencing_breakers_count_edges_twice() {
        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into()],
            rows: vec![vec![Value::Nat(1)]],
        });
        let cross = b.add(AlgOp::Cross {
            left: lit,
            right: lit,
        });
        let plan = b.finish(cross);
        let phys = PhysicalPlan::compile(&plan, true);
        let books = phys.books();
        assert_eq!(books.input_edges[1], 2);
        assert_eq!(books.consumers[0], vec![1, 1]);
        assert_eq!(books.result_consumers[lit], 2);
    }
}
