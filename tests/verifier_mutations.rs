//! Mutation testing for the static plan verifier (`pf_algebra::verify`).
//!
//! A verifier that accepts everything is worse than none — it buys false
//! confidence.  This suite injects deliberately broken plans and broken
//! "rewrites" (the kinds of bugs an optimizer rule could realistically
//! introduce: dangling edges, dropped predicates, swapped join inputs,
//! dedup of non-equal subplans, mis-targeted index probes) and asserts
//! that [`verify_plan`] / [`verify_rewrite`] reject **every single one**
//! — while accepting all twenty XMark query plans at every optimizer
//! level, with and without index scans.
//!
//! The mutations call the verifier directly rather than going through
//! `optimize_with_verify`, whose debug builds `debug_assert!` on a
//! rejected rewrite (exactly what these tests want to provoke).

use pathfinder::algebra::{
    digest, optimize_with_verify, verify_plan, verify_rewrite, AlgOp, NoStats, OptimizerLevel,
    Plan, PlanBuilder, SortSpec,
};
use pathfinder::relational::ops::{AggFunc, CmpOp, IndexMode, IndexProbe, IndexTarget};
use pathfinder::relational::Value;
use pathfinder::store::{Axis, NodeTest};
use pathfinder::xmark::queries;
use pathfinder::xquery::{compile, normalize, parse_query, CompileOptions};

fn nat_lit(b: &mut PlanBuilder, columns: &[&str], rows: &[&[u64]]) -> usize {
    b.add(AlgOp::Lit {
        columns: columns.iter().map(|c| c.to_string()).collect(),
        rows: rows
            .iter()
            .map(|r| r.iter().map(|v| Value::Nat(*v)).collect())
            .collect(),
    })
}

/// A well-formed `doc → attach iter → step` base for IndexScan mutations.
fn step_base(b: &mut PlanBuilder, uri: &str) -> usize {
    let doc = b.add(AlgOp::Doc { uri: uri.into() });
    let ctx = b.add(AlgOp::Attach {
        input: doc,
        target: "iter".into(),
        value: Value::Nat(1),
    });
    b.add(AlgOp::Step {
        input: ctx,
        axis: Axis::Descendant,
        test: NodeTest::Element("item".into()),
    })
}

fn text_probe() -> IndexProbe {
    IndexProbe::TextContains {
        needle: "gold".into(),
    }
}

/// Assert the mutated plan is rejected and the error message mentions
/// each `needles` fragment (so failures stay attributable).
fn assert_rejected(plan: &Plan, needles: &[&str]) {
    let err = verify_plan(plan).expect_err("mutation must be rejected");
    let msg = err.to_string();
    for needle in needles {
        assert!(msg.contains(needle), "`{needle}` not in error: {msg}");
    }
}

// ---------------------------------------------------------------------------
// Structural mutations: verify_plan must reject each.
// ---------------------------------------------------------------------------

#[test]
fn mutation_dangling_child_reference() {
    let mut b = PlanBuilder::new();
    let broken = b.add(AlgOp::Distinct { input: 99 });
    assert_rejected(&b.finish(broken), &["child #99"]);
}

#[test]
fn mutation_cycle_through_forward_reference() {
    // PlanBuilder does not validate forward references, so a cycle is
    // constructible: #0 → #1 → #0.
    let mut b = PlanBuilder::new();
    let a = b.add(AlgOp::Distinct { input: 1 });
    let _bk = b.add(AlgOp::Distinct { input: a });
    assert_rejected(&b.finish(a), &["cycle"]);
}

#[test]
fn mutation_unresolvable_select_column() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "item"], &[&[1, 10]]);
    let sel = b.add(AlgOp::Select {
        input: lit,
        column: "missing".into(),
    });
    assert_rejected(&b.finish(sel), &["missing", "does not resolve"]);
}

#[test]
fn mutation_ragged_literal_rows() {
    let mut b = PlanBuilder::new();
    let lit = b.add(AlgOp::Lit {
        columns: vec!["a".into(), "b".into()],
        rows: vec![vec![Value::Nat(1), Value::Nat(2)], vec![Value::Nat(3)]],
    });
    assert_rejected(&b.finish(lit), &["row 1", "1 values for 2 columns"]);
}

#[test]
fn mutation_duplicate_literal_columns() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["a", "a"], &[&[1, 2]]);
    assert_rejected(&b.finish(lit), &["duplicate column"]);
}

#[test]
fn mutation_duplicate_projection_targets() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["a", "b"], &[&[1, 2]]);
    let proj = b.add(AlgOp::Project {
        input: lit,
        columns: vec![("a".into(), "x".into()), ("b".into(), "x".into())],
    });
    assert_rejected(&b.finish(proj), &["duplicate target column `x`"]);
}

#[test]
fn mutation_projection_source_missing() {
    // The classic broken rewrite: a rule renames a column but forgets to
    // patch a consumer's source list.
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["a"], &[&[1]]);
    let proj = b.add(AlgOp::Project {
        input: lit,
        columns: vec![("gone".into(), "a".into())],
    });
    assert_rejected(&b.finish(proj), &["gone", "does not resolve"]);
}

#[test]
fn mutation_union_schema_mismatch() {
    let mut b = PlanBuilder::new();
    let l = nat_lit(&mut b, &["a", "b"], &[&[1, 2]]);
    let r = nat_lit(&mut b, &["a", "c"], &[&[1, 2]]);
    let u = b.add(AlgOp::Union { left: l, right: r });
    assert_rejected(&b.finish(u), &["input schemas disagree"]);
}

#[test]
fn mutation_attach_target_collision() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["a"], &[&[1]]);
    let at = b.add(AlgOp::Attach {
        input: lit,
        target: "a".into(),
        value: Value::Nat(7),
    });
    assert_rejected(&b.finish(at), &["target column `a` already exists"]);
}

#[test]
fn mutation_rownum_target_collision() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "pos"], &[&[1, 1]]);
    let rn = b.add(AlgOp::RowNum {
        input: lit,
        target: "pos".into(),
        order_by: vec![SortSpec::asc("iter")],
        partition: None,
    });
    assert_rejected(&b.finish(rn), &["target column `pos` already exists"]);
}

#[test]
fn mutation_aggregate_group_unresolvable() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "item"], &[&[1, 10]]);
    let agg = b.add(AlgOp::Aggregate {
        input: lit,
        group: "loop".into(),
        target: "n".into(),
        func: AggFunc::Count,
        value: "item".into(),
    });
    assert_rejected(&b.finish(agg), &["group column `loop`"]);
}

#[test]
fn mutation_sort_column_unresolvable() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["a"], &[&[1]]);
    let sort = b.add(AlgOp::Sort {
        input: lit,
        by: vec![SortSpec::asc("z")],
    });
    assert_rejected(&b.finish(sort), &["sort column `z`"]);
}

#[test]
fn mutation_step_over_iterless_input() {
    let mut b = PlanBuilder::new();
    let doc = b.add(AlgOp::Doc {
        uri: "auction.xml".into(),
    });
    // Doc produces only `item`; a step also needs `iter`.
    let step = b.add(AlgOp::Step {
        input: doc,
        axis: Axis::Child,
        test: NodeTest::AnyElement,
    });
    assert_rejected(&b.finish(step), &["context column `iter`"]);
}

#[test]
fn mutation_indexscan_over_non_step_input() {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "item"], &[&[1, 10]]);
    let idx = b.add(AlgOp::IndexScan {
        input: lit,
        uri: "auction.xml".into(),
        probe: text_probe(),
        mode: IndexMode::Exact,
    });
    assert_rejected(&b.finish(idx), &["only", "filter a step"]);
}

#[test]
fn mutation_indexscan_uri_provenance_mismatch() {
    // The candidate-superset precondition: probing document B's sidecar
    // to filter rows that came out of document A keeps *wrong* rows out
    // of the candidate set — rows the residual predicate can never
    // restore.
    let mut b = PlanBuilder::new();
    let step = step_base(&mut b, "auction.xml");
    let idx = b.add(AlgOp::IndexScan {
        input: step,
        uri: "other.xml".into(),
        probe: text_probe(),
        mode: IndexMode::Exact,
    });
    assert_rejected(&b.finish(idx), &["other.xml", "provenance"]);
}

#[test]
fn mutation_indexscan_unanswerable_nan_probe() {
    let mut b = PlanBuilder::new();
    let step = step_base(&mut b, "auction.xml");
    let idx = b.add(AlgOp::IndexScan {
        input: step,
        uri: "auction.xml".into(),
        probe: IndexProbe::ValueCmp {
            target: IndexTarget::ElementTag("price".into()),
            op: CmpOp::Lt,
            value: Value::Dbl(f64::NAN),
            to_number: true,
        },
        mode: IndexMode::Exact,
    });
    assert_rejected(&b.finish(idx), &["unanswerable probe"]);
}

#[test]
fn mutation_root_produces_no_columns() {
    let mut b = PlanBuilder::new();
    let lit = b.add(AlgOp::Lit {
        columns: vec![],
        rows: vec![],
    });
    assert_rejected(&b.finish(lit), &["root produces no columns"]);
}

// ---------------------------------------------------------------------------
// Semantic mutations: a digest captured before the "rewrite" must make
// verify_rewrite reject the broken after-plan.
// ---------------------------------------------------------------------------

/// `lit(iter, val) → σ[val = pick]` — proves `val` constant at the root.
fn selected_plan(pick: u64) -> Plan {
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "val"], &[&[1, 1], &[2, 2], &[3, 1]]);
    let sel = b.add(AlgOp::SelectEq {
        input: lit,
        column: "val".into(),
        value: Value::Nat(pick),
    });
    b.finish(sel)
}

#[test]
fn mutation_swapped_join_inputs_change_root_schema() {
    let build = |swap: bool| -> Plan {
        let mut b = PlanBuilder::new();
        let l = nat_lit(&mut b, &["a", "x"], &[&[1, 10]]);
        let r = nat_lit(&mut b, &["k", "y"], &[&[1, 20]]);
        let (left, right, lc, rc) = if swap {
            (r, l, "k", "a")
        } else {
            (l, r, "a", "k")
        };
        let j = b.add(AlgOp::EquiJoin {
            left,
            right,
            left_col: lc.into(),
            right_col: rc.into(),
        });
        b.finish(j)
    };
    let before = digest(&build(false));
    // Swapping join inputs without re-projecting reverses the output
    // column order — a schema change every consumer above would see.
    let err = verify_rewrite("mutated-join-swap", &before, &build(true))
        .expect_err("swapped join inputs must be rejected");
    assert!(err.to_string().contains("root schema changed"), "{err}");
    assert!(err.to_string().contains("mutated-join-swap"), "{err}");
}

#[test]
fn mutation_dropped_residual_predicate_loses_constant() {
    let before = digest(&selected_plan(1));
    // "Optimize away" the selection entirely: `val` is no longer
    // constant, which is exactly how a dropped residual predicate shows
    // up in the digest.
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "val"], &[&[1, 1], &[2, 2], &[3, 1]]);
    let after = b.finish(lit);
    let err = verify_rewrite("mutated-drop-predicate", &before, &after)
        .expect_err("dropped predicate must be rejected");
    assert!(err.to_string().contains("proven constant"), "{err}");
}

#[test]
fn mutation_constant_value_flip() {
    let before = digest(&selected_plan(1));
    let err = verify_rewrite("mutated-value-flip", &before, &selected_plan(2))
        .expect_err("flipped constant value must be rejected");
    assert!(err.to_string().contains("changed value"), "{err}");
}

#[test]
fn mutation_dedup_of_non_equal_subplans() {
    // before: both union branches select val = 1 (root: val constant 1).
    // after: a broken hash-cons merged the σ[val=1] branch into a
    // σ[val=2] branch — non-equal subplans dedup'd.
    let union_of = |p1: u64, p2: u64| -> Plan {
        let mut b = PlanBuilder::new();
        let mk = |b: &mut PlanBuilder, pick: u64| {
            let lit = nat_lit(b, &["iter", "val"], &[&[1, 1], &[2, 2]]);
            b.add(AlgOp::SelectEq {
                input: lit,
                column: "val".into(),
                value: Value::Nat(pick),
            })
        };
        let s1 = mk(&mut b, p1);
        let s2 = mk(&mut b, p2);
        let u = b.add(AlgOp::Union {
            left: s1,
            right: s2,
        });
        b.finish(u)
    };
    let before = digest(&union_of(1, 1));
    let err = verify_rewrite("mutated-dedup", &before, &union_of(2, 2))
        .expect_err("dedup of non-equal subplans must be rejected");
    assert!(err.to_string().contains("changed value"), "{err}");
}

#[test]
fn mutation_duplicating_rows_loses_root_key() {
    let single = |dup: bool| -> Plan {
        let mut b = PlanBuilder::new();
        let rows: &[&[u64]] = if dup { &[&[1, 7], &[1, 7]] } else { &[&[1, 7]] };
        let lit = nat_lit(&mut b, &["iter", "item"], rows);
        b.finish(lit)
    };
    let before = digest(&single(false));
    let err = verify_rewrite("mutated-duplicate-rows", &before, &single(true))
        .expect_err("duplicated rows must be rejected");
    assert!(err.to_string().contains("key"), "{err}");
    // Semantic failures embed the annotated dump for debuggability.
    assert!(err.to_string().contains("annotated plan"), "{err}");
}

#[test]
fn mutation_after_plan_structurally_broken() {
    // verify_rewrite must also catch a rewrite that left the plan
    // structurally broken (it re-runs verify_plan on the after-plan).
    let before = digest(&selected_plan(1));
    let mut b = PlanBuilder::new();
    let broken = b.add(AlgOp::Distinct { input: 42 });
    let err = verify_rewrite("mutated-structure", &before, &b.finish(broken))
        .expect_err("structurally broken after-plan must be rejected");
    assert!(err.to_string().contains("child #42"), "{err}");
}

// ---------------------------------------------------------------------------
// Positive controls: the verifier accepts what it should accept.
// ---------------------------------------------------------------------------

#[test]
fn well_formed_bases_pass_including_indexscan() {
    let mut b = PlanBuilder::new();
    let step = step_base(&mut b, "auction.xml");
    let idx = b.add(AlgOp::IndexScan {
        input: step,
        uri: "auction.xml".into(),
        probe: text_probe(),
        mode: IndexMode::Exact,
    });
    verify_plan(&b.finish(idx)).expect("well-formed IndexScan plan verifies");
    verify_plan(&selected_plan(1)).expect("well-formed selection plan verifies");
}

#[test]
fn strengthening_rewrites_are_accepted() {
    // Adding a Distinct proves a *new* key — strictly more knowledge,
    // which the monotonicity check must allow.
    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "item"], &[&[1, 7], &[1, 7]]);
    let weak = b.finish(lit);
    let before = digest(&weak);

    let mut b = PlanBuilder::new();
    let lit = nat_lit(&mut b, &["iter", "item"], &[&[1, 7], &[1, 7]]);
    let d = b.add(AlgOp::Distinct { input: lit });
    let strong = b.finish(d);
    verify_rewrite("strengthen", &before, &strong).expect("strengthening must pass");
    // And a no-op rewrite trivially passes.
    verify_rewrite("noop", &before, &weak).expect("identical plan must pass");
}

// ---------------------------------------------------------------------------
// Acceptance: every XMark query plan verifies clean at every level,
// indexes on and off.
// ---------------------------------------------------------------------------

#[test]
fn all_xmark_plans_verify_at_every_level() {
    let levels = [
        ("basic", OptimizerLevel::BASIC),
        (
            "basic+indexscan",
            OptimizerLevel {
                indexscan: true,
                ..OptimizerLevel::BASIC
            },
        ),
        (
            "full-indexscan",
            OptimizerLevel {
                indexscan: false,
                ..OptimizerLevel::FULL
            },
        ),
        ("full", OptimizerLevel::FULL),
    ];
    for q in queries() {
        let ast = parse_query(q.text).unwrap_or_else(|e| panic!("Q{} parse: {e}", q.id));
        let core = normalize(&ast).unwrap_or_else(|e| panic!("Q{} normalize: {e}", q.id));
        let compiled = compile(&core, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("Q{} compile: {e}", q.id));
        verify_plan(&compiled.plan)
            .unwrap_or_else(|e| panic!("Q{} unoptimized plan rejected: {e}", q.id));
        for (name, level) in &levels {
            let mut plan = compiled.plan.clone();
            let report = optimize_with_verify(&mut plan, *level, &NoStats, true);
            assert!(
                report.verified,
                "Q{} did not verify clean at level {name}",
                q.id
            );
            assert!(
                report.verify_passes > 0,
                "Q{} at level {name}: verifier never ran",
                q.id
            );
            verify_plan(&plan)
                .unwrap_or_else(|e| panic!("Q{} optimized ({name}) plan rejected: {e}", q.id));
        }
    }
}
