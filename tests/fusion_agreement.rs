//! Fused vs. unfused physical plans must be indistinguishable.
//!
//! Operator fusion regroups the logical DAG into pipelines, but every
//! fused kernel reproduces the unfused operator semantics exactly — same
//! values, same row order, same constructed documents.  This suite pins
//! that down end to end: all 20 XMark queries plus a constructor-heavy
//! query run with fusion on and off, at 1 and 4 executor threads, and
//! every configuration must serialize **byte-identically**.  The fused
//! runs must also actually fuse: `tables_elided` has to be positive on at
//! least one fusable query (in aggregate it eliminates a large fraction
//! of all intermediate tables — see `BENCH_pr4.json`).

use std::sync::Arc;

use pathfinder::engine::{
    EngineOptions, EngineResult, ExecStats, OptimizerLevel, Pathfinder, Profile, QueryResult,
};
use pathfinder::xmark::{generate, queries, GeneratorConfig};

fn profiled(pf: &Pathfinder, query: &str) -> EngineResult<(QueryResult, ExecStats)> {
    let outcome = pf.query_with(query, Profile::Stats)?;
    let stats = outcome.stats.expect("Profile::Stats returns stats");
    Ok((outcome.result, stats))
}

/// One engine per (fusion, threads) configuration, all sharing the parsed
/// document.
fn engines(xml: &str) -> Vec<((bool, usize), Pathfinder)> {
    let doc = Arc::new(pathfinder::xml::parse(xml).expect("generated XML is well-formed"));
    [(true, 1), (true, 4), (false, 1), (false, 4)]
        .into_iter()
        .map(|(fusion, threads)| {
            let pf = Pathfinder::with_options(EngineOptions {
                fusion,
                threads,
                ..EngineOptions::default()
            });
            pf.load_parsed("auction.xml", &doc).unwrap();
            ((fusion, threads), pf)
        })
        .collect()
}

#[test]
fn all_xmark_queries_agree_between_fused_and_unfused_runs() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let engines = engines(&xml);
    let mut total_elided = 0usize;

    for q in queries() {
        let mut reference: Option<String> = None;
        for ((fusion, threads), pf) in &engines {
            let (result, stats) = profiled(pf, q.text).unwrap_or_else(|e| {
                panic!(
                    "Q{} failed at fusion = {fusion}, threads = {threads}: {e}",
                    q.id
                )
            });
            let xml_out = result.to_xml();
            match &reference {
                None => reference = Some(xml_out),
                Some(expected) => assert_eq!(
                    *expected, xml_out,
                    "Q{}: serialization diverges at fusion = {fusion}, threads = {threads}",
                    q.id
                ),
            }
            if *fusion {
                total_elided += stats.tables_elided;
            } else {
                assert_eq!(
                    stats.tables_elided, 0,
                    "Q{}: unfused run reported elided tables",
                    q.id
                );
                assert_eq!(stats.fused_ops, 0);
            }
        }
    }
    assert!(
        total_elided > 0,
        "fusion never elided a table across the whole XMark set"
    );
}

#[test]
fn constructor_heavy_query_agrees_between_fused_and_unfused_runs() {
    // Node constructors are pinned pipeline breakers: their transient
    // document ids must come out identically whether the surrounding pure
    // chains run fused or not, at any thread count.
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let query = r#"for $p in doc("auction.xml")/site/people/person
return element card {
    attribute id { $p/@id },
    element who { $p/name/text() },
    element mail { element inner { $p/emailaddress/text() } },
    text { "person-card" }
}"#;
    let mut reference: Option<String> = None;
    for ((fusion, threads), pf) in engines(&xml) {
        let result = pf
            .session()
            .query(query)
            .unwrap_or_else(|e| panic!("failed at fusion = {fusion}, threads = {threads}: {e}"));
        assert!(!result.is_empty(), "constructor query produced no items");
        let xml_out = result.to_xml();
        match &reference {
            None => reference = Some(xml_out),
            Some(expected) => assert_eq!(
                *expected, xml_out,
                "constructor query diverges at fusion = {fusion}, threads = {threads}"
            ),
        }
    }
}

#[test]
fn fused_stats_totals_are_schedule_independent() {
    // The fusion savings are a property of the physical plan, not of the
    // schedule: 1-thread and 4-thread fused runs must report identical
    // fused_ops / tables_elided / operators_evaluated on every query.
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 7,
    });
    let engines = engines(&xml);
    for q in queries() {
        let mut fused_totals = Vec::new();
        for ((fusion, _), pf) in &engines {
            if !*fusion {
                continue;
            }
            let (_, stats) =
                profiled(pf, q.text).unwrap_or_else(|e| panic!("Q{} failed: {e}", q.id));
            fused_totals.push((
                stats.fused_ops,
                stats.tables_elided,
                stats.operators_evaluated,
            ));
        }
        assert_eq!(
            fused_totals[0], fused_totals[1],
            "Q{}: fusion totals differ between thread counts",
            q.id
        );
    }
}

#[test]
fn full_optimizer_never_decreases_the_fused_share_on_fusable_queries() {
    // The full level's *unshare* pass exists for exactly this: cloning
    // cheap shared operators so fusion sees single-consumer chains.  On
    // every query where the basic level fuses at all, the full level's
    // tables-elided share (elided / operators evaluated) must be at least
    // as high — and the results must stay byte-identical.
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).expect("generated XML is well-formed"));
    // Indexes are pinned off: an IndexScan rewrite splices an extra
    // breaker into the plan, which shifts the share denominator exactly
    // like reordering does (byte-agreement across the index knob is
    // pinned by tests/index_agreement.rs).
    let mk = |level: OptimizerLevel| {
        let pf = Pathfinder::with_options(
            EngineOptions::builder()
                .optimizer_level(level)
                .fusion(true)
                .threads(1)
                .indexes(false)
                .build(),
        );
        pf.load_parsed("auction.xml", &doc).unwrap();
        pf
    };
    let basic = mk(OptimizerLevel::BASIC);
    let full = mk(OptimizerLevel::FULL);
    let mut fusable = 0usize;
    for q in queries() {
        let out_basic = basic
            .query_with(q.text, Profile::Stats)
            .unwrap_or_else(|e| panic!("Q{} basic failed: {e}", q.id));
        let out_full = full
            .query_with(q.text, Profile::Stats)
            .unwrap_or_else(|e| panic!("Q{} full failed: {e}", q.id));
        assert_eq!(
            out_basic.result.to_xml(),
            out_full.result.to_xml(),
            "Q{}: levels disagree under fusion",
            q.id
        );
        let (s_basic, s_full) = (
            out_basic.stats.expect("Profile::Stats returns stats"),
            out_full.stats.expect("Profile::Stats returns stats"),
        );
        if s_basic.tables_elided == 0 {
            continue;
        }
        // The share invariant is about *unshare*: cloning shared cheap
        // chains can only create fusion opportunities.  Once the
        // reorderer restructures a join cluster the physical plan is a
        // different shape and its fused share is incomparable, so only
        // byte-agreement is asserted on reordered queries.
        if out_full.timings().optimizer.joins_reordered > 0 {
            continue;
        }
        fusable += 1;
        let share = |s: &ExecStats| s.tables_elided as f64 / s.operators_evaluated.max(1) as f64;
        assert!(
            share(&s_full) >= share(&s_basic) - 1e-9,
            "Q{}: fused share decreased under the full level \
             ({:.3} = {}/{} basic vs {:.3} = {}/{} full)",
            q.id,
            share(&s_basic),
            s_basic.tables_elided,
            s_basic.operators_evaluated,
            share(&s_full),
            s_full.tables_elided,
            s_full.operators_evaluated,
        );
    }
    assert!(
        fusable >= 5,
        "expected at least 5 fusable XMark queries, saw {fusable}"
    );
}
