//! Optimized vs. unoptimized plan agreement through `pf-engine`.
//!
//! The existing suites compare the relational engine against the
//! navigational baseline; this one closes the remaining gap by executing
//! the *same* compiled plan twice — once as the loop-lifting compiler
//! produced it and once after peephole optimization — through the plan
//! executor, and asserting that both runs produce identical results for
//! every XMark query.  Both plans run against one shared document registry,
//! so the comparison exercises exactly the executor path (including
//! last-use eviction on the much larger unoptimized DAGs).
//!
//! The join-graph-isolation half of the suite pins the `full` optimizer
//! level: every XMark query must serialize **byte-identically** under
//! `basic` and `full` across the threads × fusion matrix (plus morsel
//! sizes on the join-heavy queries), and each isolation rule — pushdown,
//! dedup/unshare, reorder — carries its own property test over randomized
//! literal-table plans.

use std::sync::Arc;

use proptest::prelude::*;

use pathfinder::algebra::{
    optimize, optimize_with, AlgOp, NoStats, OpId, OptimizerLevel, Plan, PlanBuilder,
};
use pathfinder::engine::{
    DocRegistry, EngineOptions, Executor, Pathfinder, Profile, QueryResult, Timings,
};
use pathfinder::relational::Value;
use pathfinder::xmark::{generate, queries, GeneratorConfig};
use pathfinder::xquery::{compile, normalize, parse_query, CompileOptions};

#[test]
fn optimized_and_unoptimized_plans_agree_on_all_xmark_queries() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let registry = DocRegistry::new();
    registry.load_xml("auction.xml", &xml).unwrap();

    for q in queries() {
        let ast = parse_query(q.text).unwrap_or_else(|e| panic!("Q{} parse failed: {e}", q.id));
        let core = normalize(&ast).unwrap_or_else(|e| panic!("Q{} normalize failed: {e}", q.id));
        let compiled = compile(&core, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("Q{} compile failed: {e}", q.id));

        let unoptimized = compiled.plan.clone();
        let mut optimized = compiled.plan;
        optimize(&mut optimized);
        assert!(
            optimized.operator_count() <= unoptimized.operator_count(),
            "Q{}: optimization grew the plan",
            q.id
        );

        let raw_table = Executor::new(&registry)
            .run(&unoptimized)
            .unwrap_or_else(|e| panic!("Q{} unoptimized plan failed: {e}", q.id));
        let opt_table = Executor::new(&registry)
            .run(&optimized)
            .unwrap_or_else(|e| panic!("Q{} optimized plan failed: {e}", q.id));

        // Identical shape…
        assert_eq!(
            raw_table.row_count(),
            opt_table.row_count(),
            "Q{}: row counts diverge between optimized and unoptimized plans",
            q.id
        );
        // …and identical serialized content (constructed nodes get fresh
        // transient document ids per run, so the tables are compared through
        // the serializer, which resolves node references).
        let raw = QueryResult::from_table(Arc::new(raw_table), &registry, Timings::default())
            .unwrap_or_else(|e| panic!("Q{} unoptimized serialization failed: {e}", q.id));
        let opt = QueryResult::from_table(Arc::new(opt_table), &registry, Timings::default())
            .unwrap_or_else(|e| panic!("Q{} optimized serialization failed: {e}", q.id));
        assert_eq!(
            raw.to_xml(),
            opt.to_xml(),
            "Q{}: optimized and unoptimized plans disagree",
            q.id
        );
        assert_eq!(raw.len(), opt.len(), "Q{}: item counts diverge", q.id);
    }
}

#[test]
fn eviction_does_not_change_results_on_shared_dags() {
    // The unoptimized Q8 plan is the paper's 120-operator showcase; running
    // it with stats exercises eviction on a heavily shared DAG.
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 7,
    });
    let registry = DocRegistry::new();
    registry.load_xml("auction.xml", &xml).unwrap();
    let q = pathfinder::xmark::query(8).unwrap();
    let ast = parse_query(q.text).unwrap();
    let core = normalize(&ast).unwrap();
    let plan = compile(&core, &CompileOptions::default()).unwrap().plan;

    let (table, stats) = Executor::new(&registry).run_with_stats(&plan).unwrap();
    assert!(stats.evicted_results > 0, "no intermediate was evicted");
    assert!(
        stats.peak_resident_rows <= stats.rows_produced,
        "peak exceeds the retain-everything total"
    );
    let (again, _) = Executor::new(&registry).run_with_stats(&plan).unwrap();
    let a = QueryResult::from_table(Arc::new(table), &registry, Timings::default()).unwrap();
    let b = QueryResult::from_table(Arc::new(again), &registry, Timings::default()).unwrap();
    assert_eq!(a.to_xml(), b.to_xml());
}

/// One engine per (level, threads, fusion) cell, all sharing the parsed
/// document.
fn level_engines(xml: &str) -> Vec<((OptimizerLevel, usize, bool), Pathfinder)> {
    let doc = Arc::new(pathfinder::xml::parse(xml).expect("generated XML is well-formed"));
    let mut engines = Vec::new();
    for level in [OptimizerLevel::BASIC, OptimizerLevel::FULL] {
        for threads in [1usize, 4] {
            for fusion in [false, true] {
                let pf = Pathfinder::with_options(
                    EngineOptions::builder()
                        .optimizer_level(level)
                        .threads(threads)
                        .fusion(fusion)
                        .build(),
                );
                pf.load_parsed("auction.xml", &doc).unwrap();
                engines.push(((level, threads, fusion), pf));
            }
        }
    }
    engines
}

#[test]
fn full_and_basic_levels_agree_on_all_xmark_queries() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let engines = level_engines(&xml);
    let mut pushed = 0usize;
    let mut deduped = 0usize;
    let mut unshared = 0usize;
    for q in queries() {
        let mut reference: Option<String> = None;
        for ((level, threads, fusion), pf) in &engines {
            let outcome = pf.query_with(q.text, Profile::None).unwrap_or_else(|e| {
                panic!(
                    "Q{} failed at level = {level}, threads = {threads}, fusion = {fusion}: {e}",
                    q.id
                )
            });
            let xml_out = outcome.to_xml();
            match &reference {
                None => reference = Some(xml_out),
                Some(expected) => assert_eq!(
                    *expected, xml_out,
                    "Q{}: serialization diverges at level = {level}, threads = {threads}, \
                     fusion = {fusion}",
                    q.id
                ),
            }
            let report = outcome.timings().optimizer;
            if *level == OptimizerLevel::FULL {
                pushed += report.predicates_pushed;
                deduped += report.subplans_deduped;
                unshared += report.chains_unshared;
            } else {
                assert_eq!(
                    report.predicates_pushed, 0,
                    "Q{}: basic level pushed σ",
                    q.id
                );
                assert_eq!(
                    report.joins_reordered, 0,
                    "Q{}: basic level reordered",
                    q.id
                );
            }
        }
    }
    // The full level must actually do something across the XMark set —
    // otherwise this suite pins nothing beyond the basic one.
    assert!(pushed > 0, "no predicate was ever pushed across XMark");
    assert!(
        deduped > 0,
        "hash-consing never merged a subplan across XMark"
    );
    assert!(unshared > 0, "unsharing never cloned a chain across XMark");
}

#[test]
fn full_level_agrees_across_morsel_sizes_on_join_heavy_queries() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).expect("generated XML is well-formed"));
    // The value-join and aggregation queries: the ones whose plans the
    // reorder/pushdown rules actually touch.
    for id in [8u8, 9, 10, 11, 12] {
        let q = pathfinder::xmark::query(id).unwrap();
        let mut reference: Option<String> = None;
        for morsel_rows in [2usize, 0, usize::MAX] {
            for level in [OptimizerLevel::BASIC, OptimizerLevel::FULL] {
                let pf = Pathfinder::with_options(
                    EngineOptions::builder()
                        .optimizer_level(level)
                        .threads(4)
                        .morsel_rows(morsel_rows)
                        .build(),
                );
                pf.load_parsed("auction.xml", &doc).unwrap();
                let out = pf
                    .query_with(q.text, Profile::None)
                    .unwrap_or_else(|e| {
                        panic!("Q{id} failed at level = {level}, morsel = {morsel_rows}: {e}")
                    })
                    .to_xml();
                match &reference {
                    None => reference = Some(out),
                    Some(expected) => assert_eq!(
                        *expected, out,
                        "Q{id}: diverges at level = {level}, morsel = {morsel_rows}"
                    ),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-rule property tests: each isolation rule, applied alone, preserves
// the executed result of randomized literal-table plans.
// ---------------------------------------------------------------------------

/// Execute `plan` against an empty registry and render every row (these
/// plans are literal-only).
fn run_rows(plan: &Plan) -> Vec<String> {
    let registry = DocRegistry::new();
    let table = Executor::new(&registry)
        .run(plan)
        .expect("literal plan executes");
    (0..table.row_count())
        .map(|r| format!("{:?}", table.row(r)))
        .collect()
}

fn nat_rows(cols: usize, values: &[Vec<u64>]) -> Vec<Vec<Value>> {
    values
        .iter()
        .map(|row| (0..cols).map(|c| Value::Nat(row[c])).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ-pushdown (through π, below ⋈, folding over literals) preserves
    /// rows *and row order* exactly: every pushdown rewrite is
    /// order-preserving.
    #[test]
    fn pushdown_preserves_rows_and_order(
        left in proptest::collection::vec((0u64..5, 0u64..40), 1..12),
        right in proptest::collection::vec((0u64..5, 0u64..6), 1..12),
        pick in 0u64..6,
    ) {
        let mut b = PlanBuilder::new();
        let lrows: Vec<Vec<u64>> = left
            .iter()
            .enumerate()
            .map(|(i, (a, p))| vec![i as u64 + 1, *p, *a])
            .collect();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "a".into()],
            rows: nat_rows(3, &lrows),
        });
        let rrows: Vec<Vec<u64>> = right.iter().map(|(k, v)| vec![*k, *v]).collect();
        let r = b.add(AlgOp::Lit {
            columns: vec!["k".into(), "v".into()],
            rows: nat_rows(2, &rrows),
        });
        let j = b.add(AlgOp::EquiJoin {
            left: l,
            right: r,
            left_col: "a".into(),
            right_col: "k".into(),
        });
        let p = b.add(AlgOp::Project {
            input: j,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("pos".into(), "pos".into()),
                ("v".into(), "val".into()),
            ],
        });
        let s = b.add(AlgOp::SelectEq {
            input: p,
            column: "val".into(),
            value: Value::Nat(pick),
        });
        let plan = b.finish(s);

        let raw = run_rows(&plan);
        let mut optimized = plan.clone();
        let report = optimize_with(
            &mut optimized,
            OptimizerLevel { pushdown: true, ..OptimizerLevel::BASIC },
            &NoStats,
        );
        prop_assert!(
            report.predicates_pushed + report.constants_folded > 0,
            "the σ-over-π-over-⋈ shape must trigger the rule"
        );
        prop_assert_eq!(run_rows(&optimized), raw);
    }

    /// Hash-consed dedup (and the post-fixpoint unshare) preserve rows and
    /// row order on plans with duplicated subtrees.
    #[test]
    fn dedup_and_unshare_preserve_rows_and_order(
        rows in proptest::collection::vec((0u64..4, 0u64..4), 1..10),
        sel in 0u64..4,
    ) {
        let build_branch = |b: &mut PlanBuilder, rows: &[(u64, u64)], sel: u64| -> OpId {
            let lit_rows: Vec<Vec<u64>> = rows.iter().map(|(a, v)| vec![*a, *v]).collect();
            let l = b.add(AlgOp::Lit {
                columns: vec!["a".into(), "v".into()],
                rows: nat_rows(2, &lit_rows),
            });
            let p = b.add(AlgOp::Project {
                input: l,
                columns: vec![("a".into(), "a".into()), ("v".into(), "w".into())],
            });
            b.add(AlgOp::SelectEq {
                input: p,
                column: "w".into(),
                value: Value::Nat(sel),
            })
        };
        let mut b = PlanBuilder::new();
        let s1 = build_branch(&mut b, &rows, sel);
        let s2 = build_branch(&mut b, &rows, sel);
        let u = b.add(AlgOp::Union { left: s1, right: s2 });
        let plan = b.finish(u);

        let raw = run_rows(&plan);
        for level in [
            OptimizerLevel { dedup: true, ..OptimizerLevel::BASIC },
            OptimizerLevel { dedup: true, unshare: true, ..OptimizerLevel::BASIC },
        ] {
            let mut optimized = plan.clone();
            let report = optimize_with(&mut optimized, level, &NoStats);
            prop_assert!(
                report.subplans_deduped > 0,
                "identical branches must hash-cons"
            );
            prop_assert_eq!(run_rows(&optimized), raw.clone());
        }
    }

    /// Statistics-driven join reordering preserves the row *multiset* of
    /// order-free join clusters (the rewrite only fires where row order is
    /// provably insignificant, so order itself is not pinned here).
    #[test]
    fn reorder_preserves_row_multisets(
        a_vals in proptest::collection::vec(0u64..8, 1..12),
        b_vals in proptest::collection::vec(0u64..8, 1..10),
        c_vals in proptest::collection::vec(0u64..30, 1..8),
    ) {
        let mut b = PlanBuilder::new();
        // A: arbitrary join values under a distinct key (posk).
        let arows: Vec<Vec<u64>> = a_vals
            .iter()
            .enumerate()
            .map(|(i, v)| vec![i as u64, *v])
            .collect();
        let a = b.add(AlgOp::Lit {
            columns: vec!["posk".into(), "j1".into()],
            rows: nat_rows(2, &arows),
        });
        // B and C: keyed on their join columns (0..n distinct), so the
        // joins preserve A's key and the root region stays order-free.
        let brows: Vec<Vec<u64>> = b_vals
            .iter()
            .enumerate()
            .map(|(i, v)| vec![i as u64, *v])
            .collect();
        let bb = b.add(AlgOp::Lit {
            columns: vec!["j1b".into(), "j2".into()],
            rows: nat_rows(2, &brows),
        });
        let crows: Vec<Vec<u64>> = c_vals
            .iter()
            .enumerate()
            .map(|(i, v)| vec![i as u64, *v])
            .collect();
        let c = b.add(AlgOp::Lit {
            columns: vec!["j2c".into(), "val".into()],
            rows: nat_rows(2, &crows),
        });
        let j1 = b.add(AlgOp::EquiJoin {
            left: a,
            right: bb,
            left_col: "j1".into(),
            right_col: "j1b".into(),
        });
        let j2 = b.add(AlgOp::EquiJoin {
            left: j1,
            right: c,
            left_col: "j2".into(),
            right_col: "j2c".into(),
        });
        let p = b.add(AlgOp::Project {
            input: j2,
            columns: vec![("posk".into(), "pos".into()), ("val".into(), "item".into())],
        });
        let plan = b.finish(p);

        let mut raw = run_rows(&plan);
        let mut optimized = plan.clone();
        optimize_with(
            &mut optimized,
            OptimizerLevel { reorder: true, ..OptimizerLevel::BASIC },
            &NoStats,
        );
        let mut opt = run_rows(&optimized);
        prop_assert_eq!(raw.len(), opt.len());
        raw.sort_unstable();
        opt.sort_unstable();
        prop_assert_eq!(raw, opt);
    }
}
