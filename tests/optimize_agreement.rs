//! Optimized vs. unoptimized plan agreement through `pf-engine`.
//!
//! The existing suites compare the relational engine against the
//! navigational baseline; this one closes the remaining gap by executing
//! the *same* compiled plan twice — once as the loop-lifting compiler
//! produced it and once after peephole optimization — through the plan
//! executor, and asserting that both runs produce identical results for
//! every XMark query.  Both plans run against one shared document registry,
//! so the comparison exercises exactly the executor path (including
//! last-use eviction on the much larger unoptimized DAGs).

use std::sync::Arc;

use pathfinder::algebra::optimize;
use pathfinder::engine::{DocRegistry, Executor, QueryResult, Timings};
use pathfinder::xmark::{generate, queries, GeneratorConfig};
use pathfinder::xquery::{compile, normalize, parse_query, CompileOptions};

#[test]
fn optimized_and_unoptimized_plans_agree_on_all_xmark_queries() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let registry = DocRegistry::new();
    registry.load_xml("auction.xml", &xml).unwrap();

    for q in queries() {
        let ast = parse_query(q.text).unwrap_or_else(|e| panic!("Q{} parse failed: {e}", q.id));
        let core = normalize(&ast).unwrap_or_else(|e| panic!("Q{} normalize failed: {e}", q.id));
        let compiled = compile(&core, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("Q{} compile failed: {e}", q.id));

        let unoptimized = compiled.plan.clone();
        let mut optimized = compiled.plan;
        optimize(&mut optimized);
        assert!(
            optimized.operator_count() <= unoptimized.operator_count(),
            "Q{}: optimization grew the plan",
            q.id
        );

        let raw_table = Executor::new(&registry)
            .run(&unoptimized)
            .unwrap_or_else(|e| panic!("Q{} unoptimized plan failed: {e}", q.id));
        let opt_table = Executor::new(&registry)
            .run(&optimized)
            .unwrap_or_else(|e| panic!("Q{} optimized plan failed: {e}", q.id));

        // Identical shape…
        assert_eq!(
            raw_table.row_count(),
            opt_table.row_count(),
            "Q{}: row counts diverge between optimized and unoptimized plans",
            q.id
        );
        // …and identical serialized content (constructed nodes get fresh
        // transient document ids per run, so the tables are compared through
        // the serializer, which resolves node references).
        let raw = QueryResult::from_table(Arc::new(raw_table), &registry, Timings::default())
            .unwrap_or_else(|e| panic!("Q{} unoptimized serialization failed: {e}", q.id));
        let opt = QueryResult::from_table(Arc::new(opt_table), &registry, Timings::default())
            .unwrap_or_else(|e| panic!("Q{} optimized serialization failed: {e}", q.id));
        assert_eq!(
            raw.to_xml(),
            opt.to_xml(),
            "Q{}: optimized and unoptimized plans disagree",
            q.id
        );
        assert_eq!(raw.len(), opt.len(), "Q{}: item counts diverge", q.id);
    }
}

#[test]
fn eviction_does_not_change_results_on_shared_dags() {
    // The unoptimized Q8 plan is the paper's 120-operator showcase; running
    // it with stats exercises eviction on a heavily shared DAG.
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 7,
    });
    let registry = DocRegistry::new();
    registry.load_xml("auction.xml", &xml).unwrap();
    let q = pathfinder::xmark::query(8).unwrap();
    let ast = parse_query(q.text).unwrap();
    let core = normalize(&ast).unwrap();
    let plan = compile(&core, &CompileOptions::default()).unwrap().plan;

    let (table, stats) = Executor::new(&registry).run_with_stats(&plan).unwrap();
    assert!(stats.evicted_results > 0, "no intermediate was evicted");
    assert!(
        stats.peak_resident_rows <= stats.rows_produced,
        "peak exceeds the retain-everything total"
    );
    let (again, _) = Executor::new(&registry).run_with_stats(&plan).unwrap();
    let a = QueryResult::from_table(Arc::new(table), &registry, Timings::default()).unwrap();
    let b = QueryResult::from_table(Arc::new(again), &registry, Timings::default()).unwrap();
    assert_eq!(a.to_xml(), b.to_xml());
}
