//! Integration tests of the full stack: storage, compilation stages,
//! staircase-join statistics, the XMark kit and the engine façade.

use pathfinder::engine::{EngineOptions, Pathfinder};
use pathfinder::store::{staircase_join_counted, Axis, DocStore, NodeTest, StorageStats};
use pathfinder::xmark::{generate, generate_stats, queries, GeneratorConfig, QueryClass};
use pathfinder::xquery::CompileOptions;

#[test]
fn xmark_documents_shred_and_account_storage() {
    let config = GeneratorConfig {
        scale: 0.01,
        seed: 99,
    };
    let xml = generate(&config);
    let stats = generate_stats(&config);
    let store = DocStore::from_xml("auction.xml", &xml).unwrap();
    // Structural sanity of the shredded document.
    assert!(store.node_count() > 10 * stats.persons);
    assert_eq!(store.level_of(0), 0);
    assert_eq!(store.tag_of(store.root_element().unwrap()), "site");
    // Storage accounting reports a complete breakdown.
    let storage = StorageStats::measure(&store);
    assert_eq!(storage.source_bytes, xml.len());
    assert!(storage.total_bytes() > 0);
    let overhead = storage.overhead_percent().unwrap();
    assert!(
        overhead > 50.0 && overhead < 300.0,
        "implausible overhead {overhead}"
    );
}

#[test]
fn staircase_join_prunes_and_skips_on_xmark_documents() {
    let xml = generate(&GeneratorConfig {
        scale: 0.01,
        seed: 3,
    });
    let store = DocStore::from_xml("auction.xml", &xml).unwrap();
    let everything: Vec<u32> = (0..store.node_count() as u32).collect();
    let (result, stats) =
        staircase_join_counted(&store, &everything, Axis::Descendant, &NodeTest::AnyElement);
    // With every node as context, pruning must collapse the context to the
    // document node and scan each row at most once.
    assert_eq!(stats.pruned_context, 1);
    assert!(stats.rows_scanned <= store.node_count());
    assert_eq!(
        result.len(),
        (0..store.node_count() as u32)
            .filter(|&p| NodeTest::AnyElement.matches(&store, p))
            .count()
    );
}

#[test]
fn explain_exposes_the_compilation_stages() {
    let xml = generate(&GeneratorConfig {
        scale: 0.005,
        seed: 5,
    });
    let pf = Pathfinder::new();
    pf.load_document("auction.xml", &xml).unwrap();
    for q in queries() {
        let explain = pf.explain(q.text).unwrap();
        assert!(
            explain.report.operators_after <= explain.report.operators_before,
            "Q{}",
            q.id
        );
        assert!(explain.unoptimized.operator_count() >= explain.optimized.operator_count());
        if q.class == QueryClass::Join {
            assert!(
                explain.joins_recognized >= 1,
                "Q{} should compile into a join plan",
                q.id
            );
        }
        // Plans render in both formats.
        assert!(explain.plan_ascii().lines().count() > 1);
        assert!(explain.plan_dot().contains("digraph"));
    }
}

#[test]
fn join_recognition_avoids_quadratic_intermediates() {
    // Structural ablation: with join recognition the Q8 plan contains an
    // equi-join between the two key relations; without it the inner
    // sequence is lifted through a cross product with the outer loop.
    let q8 = pathfinder::xmark::query(8).unwrap();
    let with = Pathfinder::new().explain(q8.text).unwrap();
    let without = Pathfinder::with_options(EngineOptions {
        compile: CompileOptions {
            join_recognition: false,
            ..Default::default()
        },
        optimize: true,
        ..Default::default()
    })
    .explain(q8.text)
    .unwrap();
    assert!(with.joins_recognized > without.joins_recognized);
    let histogram = |plan: &pathfinder::algebra::Plan, name: &str| {
        plan.operator_histogram()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .unwrap_or(0)
    };
    // The unrecognized plan needs one more staircase step chain (the inner
    // document path is compiled under the outer loop).
    assert!(histogram(&without.optimized, "step") >= histogram(&with.optimized, "step"));
}

#[test]
fn timings_are_reported_and_queries_are_repeatable() {
    let xml = generate(&GeneratorConfig {
        scale: 0.005,
        seed: 11,
    });
    let pf = Pathfinder::new();
    pf.load_document("auction.xml", &xml).unwrap();
    let q = pathfinder::xmark::query(8).unwrap();
    let first = pf.session().query(q.text).unwrap();
    let second = pf.session().query(q.text).unwrap();
    assert_eq!(first.to_xml(), second.to_xml(), "repeated runs must agree");
    assert!(first.timings().total().as_nanos() > 0);
    assert!(!first.is_empty());
}

#[test]
fn engine_reports_errors_for_bad_input() {
    let pf = Pathfinder::new();
    assert!(pf.load_document("bad.xml", "<a><b></a>").is_err());
    assert!(pf.session().query("for $x in").is_err());
    assert!(pf.session().query("frobnicate(1)").is_err());
    assert!(pf.session().query("$undefined + 1").is_err());
    assert!(pf.session().query("fn:doc(\"missing.xml\")//a").is_err());
}

#[test]
fn scale_factors_change_document_and_query_results_monotonically() {
    let small = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 1,
    });
    let large = generate(&GeneratorConfig {
        scale: 0.02,
        seed: 1,
    });
    let pf_small = Pathfinder::new();
    pf_small.load_document("auction.xml", &small).unwrap();
    let pf_large = Pathfinder::new();
    pf_large.load_document("auction.xml", &large).unwrap();
    let count_query = "fn:count(fn:doc(\"auction.xml\")/site/people/person)";
    let small_count: i64 = pf_small
        .session()
        .query(count_query)
        .unwrap()
        .to_xml()
        .parse()
        .unwrap();
    let large_count: i64 = pf_large
        .session()
        .query(count_query)
        .unwrap()
        .to_xml()
        .parse()
        .unwrap();
    assert!(large_count > 3 * small_count);
}
