//! Property tests for the typed join/aggregation kernels: the
//! borrowed-key hash join ([`JoinPlan`]) and the typed accumulators of
//! [`AggPlan`] must agree with the value-at-a-time reference paths
//! (`equi_join_generic` / `aggregate_by_generic`) on *random* tables —
//! including the corners where the typed key extraction could plausibly
//! diverge:
//!
//! * `Nat` values above `i64::MAX` (the `Bits` key class),
//! * non-integral doubles (also `Bits`) and integral doubles (which
//!   collapse onto the integer key class),
//! * mixed-type `Item` columns (per-row `Value` dispatch),
//! * empty inputs on either side.
//!
//! On top of plain agreement, the chunked evaluation contracts are pinned
//! property-style: probe ranges concatenate to the full probe, and for
//! the chunk-safe aggregation functions, per-chunk partials merged in
//! order equal the sequential run — for every chunk size.
//!
//! [`JoinPlan`]: pathfinder::relational::ops::JoinPlan
//! [`AggPlan`]: pathfinder::relational::ops::AggPlan

use proptest::prelude::*;

use pathfinder::relational::ops::{self, AggFunc, AggPlan, JoinPlan};
use pathfinder::relational::{Column, Table, Value};

/// Random scalar values spanning every key class: small colliding
/// integers, huge `Nat`s beyond `i64::MAX`, integral and fractional
/// doubles, short strings (some of which parse as numbers — the string
/// sum path), and booleans.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-4i64..4).prop_map(Value::Int),
        (i64::MIN..i64::MAX).prop_map(Value::Int),
        (0u64..4).prop_map(Value::Nat),
        (0u64..u64::MAX).prop_map(Value::Nat),
        (-4i64..4).prop_map(|i| Value::Dbl(i as f64)),
        (-100.0f64..100.0).prop_map(Value::Dbl),
        "[a-b0-9]{0,2}".prop_map(Value::Str),
        proptest::bool::ANY.prop_map(Value::Bool),
    ]
}

/// A random column of exactly `len` rows: homogeneous typed columns (so
/// the typed `KeyView` slices are exercised) or a mixed `Item` column.
fn column_strategy(len: usize) -> BoxedStrategy<Column> {
    let exactly = len..len + 1;
    prop_oneof![
        proptest::collection::vec(prop_oneof![0u64..6, 0u64..u64::MAX], exactly.clone())
            .prop_map(Column::nats),
        proptest::collection::vec(-6i64..6, exactly.clone()).prop_map(Column::ints),
        proptest::collection::vec(
            prop_oneof![(-4i64..4).prop_map(|i| i as f64), -50.0f64..50.0],
            exactly.clone()
        )
        .prop_map(Column::dbls),
        proptest::collection::vec("[a-b0-9]{0,2}", exactly.clone()).prop_map(Column::strs),
        proptest::collection::vec(value_strategy(), exactly).prop_map(Column::from_values),
    ]
    .boxed()
}

/// Two same-length random columns (a key and a payload).
fn table_columns(max_rows: usize) -> impl Strategy<Value = (Column, Column)> {
    (0..max_rows + 1).prop_flat_map(|n| (column_strategy(n), column_strategy(n)))
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn typed_join_agrees_with_the_generic_join(
        (lkey, lval) in table_columns(24),
        (rkey, rval) in table_columns(24),
    ) {
        let left = Table::new(vec![("k".into(), lkey), ("v".into(), lval)]).unwrap();
        let right = Table::new(vec![("k2".into(), rkey), ("w".into(), rval)]).unwrap();
        let typed = ops::equi_join(&left, &right, "k", "k2").unwrap();
        let generic = ops::equi_join_generic(&left, &right, "k", "k2").unwrap();
        prop_assert_eq!(typed, generic);
    }

    #[test]
    fn chunked_probe_ranges_concatenate_to_the_full_probe(
        (lkey, lval) in table_columns(24),
        (rkey, rval) in table_columns(24),
        chunk in 1usize..9,
    ) {
        let left = Table::new(vec![("k".into(), lkey), ("v".into(), lval)]).unwrap();
        let right = Table::new(vec![("k2".into(), rkey), ("w".into(), rval)]).unwrap();
        let plan = JoinPlan::new(&left, &right, "k", "k2").unwrap();
        let rows = plan.probe_rows();
        let full = plan.probe_range(0..rows);
        let mut chunked = Vec::new();
        let mut lo = 0;
        while lo < rows {
            let hi = (lo + chunk).min(rows);
            chunked.extend(plan.probe_range(lo..hi));
            lo = hi;
        }
        prop_assert_eq!(&full, &chunked);
        prop_assert_eq!(
            plan.materialize(full).unwrap(),
            ops::equi_join_generic(&left, &right, "k", "k2").unwrap()
        );
    }

    #[test]
    fn typed_aggregation_agrees_with_the_generic_aggregation(
        (group, value) in table_columns(32),
        func in agg_func(),
    ) {
        let table = Table::new(vec![("g".into(), group), ("v".into(), value)]).unwrap();
        let typed = ops::aggregate_by(&table, "g", "out", func, "v");
        let generic = ops::aggregate_by_generic(&table, "g", "out", func, "v");
        match (typed, generic) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "typed ok = {}, generic ok = {} — one path errored where the other succeeded",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }

    #[test]
    fn segmented_aggregation_agrees_with_the_generic_hash_path(
        mut keys in proptest::collection::vec(0u64..8, 0..40),
        value in (0..41usize).prop_flat_map(column_strategy),
        func in agg_func(),
    ) {
        // An ascending Nat group column takes the hash-free segmented scan
        // (exactly what iter-grouped loop-lifted tables look like).
        keys.sort_unstable();
        let n = keys.len().min(value.len());
        keys.truncate(n);
        let rows: Vec<usize> = (0..n).collect();
        let value = value.gather(&rows);
        let table = Table::new(vec![("g".into(), Column::nats(keys)), ("v".into(), value)]).unwrap();
        let plan = AggPlan::new(&table, "g", "out", func, "v").unwrap();
        prop_assert!(plan.segmented());
        let typed = ops::aggregate_by(&table, "g", "out", func, "v");
        let generic = ops::aggregate_by_generic(&table, "g", "out", func, "v");
        match (typed, generic) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "segmented ok = {}, generic ok = {}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }

    #[test]
    fn chunked_partials_merge_to_the_sequential_aggregate(
        (group, value) in table_columns(32),
        func in agg_func(),
        chunk in 1usize..9,
    ) {
        let table = Table::new(vec![("g".into(), group), ("v".into(), value)]).unwrap();
        let plan = AggPlan::new(&table, "g", "out", func, "v").unwrap();
        prop_assume!(plan.chunk_parallel_safe());
        let rows = plan.input_rows();
        let mut partials = Vec::new();
        let mut lo = 0;
        let mut failed = false;
        while lo < rows {
            let hi = (lo + chunk).min(rows);
            match plan.partial(lo..hi) {
                Ok(p) => partials.push(p),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
            lo = hi;
        }
        let sequential = plan.run();
        if failed {
            // A chunk error implies the sequential pass errors too (the
            // executor re-runs sequentially for the canonical message).
            prop_assert!(sequential.is_err());
        } else {
            let merged = plan.finish(plan.merge(partials).unwrap()).unwrap();
            prop_assert_eq!(merged, sequential.unwrap());
        }
    }
}
