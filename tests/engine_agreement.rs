//! Cross-engine agreement tests.
//!
//! The strongest correctness argument this reproduction can make is that
//! two completely independent implementations — the relational, loop-lifted
//! Pathfinder engine and the navigational baseline interpreter — produce
//! identical results for the whole XMark query set on generated documents.

use pathfinder::baseline::BaselineEngine;
use pathfinder::engine::Pathfinder;
use pathfinder::xmark::{generate, queries, GeneratorConfig};

fn engines(scale: f64, seed: u64) -> (Pathfinder, BaselineEngine) {
    let xml = generate(&GeneratorConfig { scale, seed });
    let pf = Pathfinder::new();
    pf.load_document("auction.xml", &xml).unwrap();
    let mut baseline = BaselineEngine::new();
    baseline.load_document("auction.xml", &xml).unwrap();
    (pf, baseline)
}

#[test]
fn all_twenty_xmark_queries_agree_between_engines() {
    let (pf, mut baseline) = engines(0.004, 20050831);
    for q in queries() {
        let relational = pf
            .session()
            .query(q.text)
            .unwrap_or_else(|e| panic!("Pathfinder failed on Q{}: {e}", q.id));
        let navigational = baseline
            .query(q.text)
            .unwrap_or_else(|e| panic!("baseline failed on Q{}: {e}", q.id));
        assert_eq!(
            relational.to_xml(),
            navigational.to_xml(),
            "Q{} disagrees between the relational and navigational engines",
            q.id
        );
    }
}

#[test]
fn join_recognition_does_not_change_results() {
    use pathfinder::engine::EngineOptions;
    use pathfinder::xquery::CompileOptions;

    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 7,
    });
    let with_joins = Pathfinder::new();
    with_joins.load_document("auction.xml", &xml).unwrap();
    let without_joins = Pathfinder::with_options(EngineOptions {
        compile: CompileOptions {
            join_recognition: false,
            ..Default::default()
        },
        optimize: true,
        ..Default::default()
    });
    without_joins.load_document("auction.xml", &xml).unwrap();

    for id in [8u8, 9, 10, 11, 12] {
        let q = pathfinder::xmark::query(id).unwrap();
        let a = with_joins.session().query(q.text).unwrap();
        let b = without_joins.session().query(q.text).unwrap();
        assert_eq!(
            a.to_xml(),
            b.to_xml(),
            "Q{id} changed under join recognition"
        );
    }
}

#[test]
fn optimizer_does_not_change_results() {
    use pathfinder::engine::EngineOptions;

    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 13,
    });
    let optimized = Pathfinder::new();
    optimized.load_document("auction.xml", &xml).unwrap();
    let unoptimized = Pathfinder::with_options(EngineOptions {
        optimize: false,
        ..Default::default()
    });
    unoptimized.load_document("auction.xml", &xml).unwrap();

    for q in queries() {
        let a = optimized.session().query(q.text).unwrap();
        let b = unoptimized.session().query(q.text).unwrap();
        assert_eq!(
            a.to_xml(),
            b.to_xml(),
            "Q{} changed under peephole optimization",
            q.id
        );
    }
}

#[test]
fn engines_agree_on_handwritten_micro_queries() {
    let xml = "<site><people>\
        <person id=\"p0\"><name>Ann</name><age>31</age></person>\
        <person id=\"p1\"><name>Bo</name><age>45</age></person>\
        <person id=\"p2\"><name>Cy</name><age>22</age></person>\
        </people></site>";
    let pf = Pathfinder::new();
    pf.load_document("doc.xml", xml).unwrap();
    let mut baseline = BaselineEngine::new();
    baseline.load_document("doc.xml", xml).unwrap();

    let queries = [
        "fn:count(fn:doc(\"doc.xml\")//person)",
        "fn:sum(fn:doc(\"doc.xml\")//age)",
        "for $p in fn:doc(\"doc.xml\")//person where number($p/age) > 30 return string($p/name)",
        "for $p in fn:doc(\"doc.xml\")//person order by number($p/age) return string($p/name)",
        "for $p in fn:doc(\"doc.xml\")//person order by number($p/age) descending return string($p/name)",
        "fn:doc(\"doc.xml\")//person[2]/name/text()",
        "fn:doc(\"doc.xml\")//person[last()]/name/text()",
        "for $p in fn:doc(\"doc.xml\")//person return element row { attribute id { $p/@id }, $p/name/text() }",
        "if (fn:empty(fn:doc(\"doc.xml\")//person[@id = \"p9\"])) then \"none\" else \"some\"",
        "fn:distinct-values(fn:doc(\"doc.xml\")//person/@id)",
        "some $p in fn:doc(\"doc.xml\")//person satisfies number($p/age) > 40",
        "(1, 2, 3, fn:count(fn:doc(\"doc.xml\")//name))",
        "for $a in fn:doc(\"doc.xml\")//person, $b in fn:doc(\"doc.xml\")//person where $a/@id = $b/@id return 1",
    ];
    for q in queries {
        let a = pf
            .session()
            .query(q)
            .unwrap_or_else(|e| panic!("Pathfinder failed on `{q}`: {e}"));
        let b = baseline
            .query(q)
            .unwrap_or_else(|e| panic!("baseline failed on `{q}`: {e}"));
        assert_eq!(a.to_xml(), b.to_xml(), "engines disagree on `{q}`");
    }
}
