//! Determinism of the parallel ready-set executor.
//!
//! The scheduler may interleave independent plan branches arbitrarily, but
//! every operator is a pure function of its input tables and the
//! node-constructing operators are pinned to the coordinator thread in
//! plan order (so transient document ids are reproducible).  Consequence:
//! the serialized result and the logical row counts of every query must be
//! *identical* at every thread count.  This suite pins that down for all
//! 20 XMark queries plus a constructor-heavy query that exercises the
//! pinned path, comparing `threads = 1` (the sequential executor) against
//! `threads = 4`.

use std::sync::Arc;

use pathfinder::engine::{
    EngineOptions, EngineResult, ExecStats, Pathfinder, Profile, QueryResult,
};
use pathfinder::xmark::{generate, queries, GeneratorConfig};

fn profiled(pf: &Pathfinder, query: &str) -> EngineResult<(QueryResult, ExecStats)> {
    let outcome = pf.query_with(query, Profile::Stats)?;
    let stats = outcome.stats.expect("Profile::Stats returns stats");
    Ok((outcome.result, stats))
}

fn engine_pair(xml: &str) -> (Pathfinder, Pathfinder) {
    let doc = Arc::new(pathfinder::xml::parse(xml).expect("generated XML is well-formed"));
    let make = |threads: usize| {
        let pf = Pathfinder::with_options(EngineOptions {
            threads,
            ..EngineOptions::default()
        });
        pf.load_parsed("auction.xml", &doc).unwrap();
        pf
    };
    (make(1), make(4))
}

#[test]
fn all_xmark_queries_agree_between_one_and_four_threads() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let (sequential, parallel) = engine_pair(&xml);

    for q in queries() {
        let (seq, seq_stats) = profiled(&sequential, q.text)
            .unwrap_or_else(|e| panic!("Q{} failed at threads = 1: {e}", q.id));
        let (par, par_stats) = profiled(&parallel, q.text)
            .unwrap_or_else(|e| panic!("Q{} failed at threads = 4: {e}", q.id));

        assert_eq!(
            seq.to_xml(),
            par.to_xml(),
            "Q{}: serialized results diverge between thread counts",
            q.id
        );
        assert_eq!(
            seq.len(),
            par.len(),
            "Q{}: result item counts diverge",
            q.id
        );
        // The logical work totals are schedule-independent: same operators,
        // same tables, same rows — only the resident peaks may differ.
        assert_eq!(
            seq_stats.rows_produced, par_stats.rows_produced,
            "Q{}: logical row totals diverge",
            q.id
        );
        assert_eq!(
            seq_stats.operators_evaluated, par_stats.operators_evaluated,
            "Q{}: operator counts diverge",
            q.id
        );
        assert_eq!(
            seq_stats.evicted_results, par_stats.evicted_results,
            "Q{}: eviction counts diverge",
            q.id
        );
    }
}

#[test]
fn constructor_heavy_query_agrees_across_thread_counts() {
    // Several independent element/attribute/text constructors per
    // iteration: every one of them is pinned, registers its own transient
    // document, and the ids it draws must come out in plan order at every
    // thread count (node items embed `(doc, pre)` refs which the
    // serializer resolves).
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let (sequential, parallel) = engine_pair(&xml);
    let query = r#"for $p in doc("auction.xml")/site/people/person
return element card {
    attribute id { $p/@id },
    element who { $p/name/text() },
    element mail { element inner { $p/emailaddress/text() } },
    text { "person-card" }
}"#;

    let seq = sequential.session().query(query).expect("threads = 1");
    let par = parallel.session().query(query).expect("threads = 4");
    assert!(!seq.is_empty(), "constructor query produced no items");
    assert_eq!(seq.to_xml(), par.to_xml());
    assert_eq!(seq.len(), par.len());
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Re-running the same query on the same engine must serialize
    // identically every time, whatever the scheduler did (this also runs
    // through the plan cache on the second iteration).
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 7,
    });
    let (_, parallel) = engine_pair(&xml);
    let q8 = pathfinder::xmark::query(8).unwrap();
    let first = parallel
        .session()
        .query(q8.text)
        .expect("first parallel run");
    for _ in 0..3 {
        let again = parallel
            .session()
            .query(q8.text)
            .expect("repeated parallel run");
        assert_eq!(first.to_xml(), again.to_xml());
    }
}
