//! Determinism of the morsel-parallel executor on the persistent pool.
//!
//! Intra-operator parallelism must be invisible: partitioned sorts, row
//! numberings, staircase shards and chunked fused pipelines merge
//! deterministically, so the serialized result, the row counts and the
//! schedule-independent [`ExecStats`] totals of every query are
//! **byte-identical** across
//!
//! * thread counts (`1` — the sequential executor — vs `4`),
//! * morsel sizes (tiny — every big operator splits into many chunks —
//!   vs the default vs `∞` — no intra-operator partitioning at all), and
//! * fusion on/off (chunked pipelines vs chunked single operators).
//!
//! This suite pins that down for all 20 XMark queries plus a
//! constructor-heavy query, comparing every configuration against the
//! sequential, unpartitioned reference of the same fusion setting (work
//! totals differ *between* fusion settings by design — elided tables —
//! so the reference is per fusion flag).

use std::sync::Arc;

use pathfinder::engine::{
    EngineOptions, EngineResult, ExecStats, Pathfinder, Profile, QueryResult,
};
use pathfinder::xmark::{generate, queries, GeneratorConfig};

const CONSTRUCTOR_QUERY: &str = r#"for $p in doc("auction.xml")/site/people/person
return element card {
    attribute id { $p/@id },
    element who { $p/name/text() },
    element mail { element inner { $p/emailaddress/text() } },
    text { "person-card" }
}"#;

struct Config {
    threads: usize,
    morsel_rows: usize,
    label: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        threads: 1,
        morsel_rows: usize::MAX,
        label: "t1/∞",
    },
    Config {
        threads: 1,
        morsel_rows: 2,
        label: "t1/tiny",
    },
    Config {
        threads: 4,
        morsel_rows: usize::MAX,
        label: "t4/∞",
    },
    Config {
        threads: 4,
        morsel_rows: 0,
        label: "t4/default",
    },
    Config {
        threads: 4,
        morsel_rows: 2,
        label: "t4/tiny",
    },
];

fn profiled(pf: &Pathfinder, query: &str) -> EngineResult<(QueryResult, ExecStats)> {
    let outcome = pf.query_with(query, Profile::Stats)?;
    let stats = outcome.stats.expect("Profile::Stats returns stats");
    Ok((outcome.result, stats))
}

fn engine(xml_doc: &Arc<pathfinder::xml::Document>, fusion: bool, config: &Config) -> Pathfinder {
    let pf = Pathfinder::with_options(EngineOptions {
        threads: config.threads,
        morsel_rows: config.morsel_rows,
        fusion,
        ..EngineOptions::default()
    });
    pf.load_parsed("auction.xml", xml_doc).unwrap();
    pf
}

/// The schedule-independent slice of [`ExecStats`] (peaks legitimately
/// vary with scheduling and buffer sharing).  The join/aggregate kernel
/// counters are included: build/probe/input row counts depend only on
/// the tables, never on how the probe was morselized.
type Totals = (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

fn totals(stats: &ExecStats) -> Totals {
    (
        stats.operators_evaluated,
        stats.rows_produced,
        stats.cells_produced,
        stats.evicted_results,
        stats.fused_ops,
        stats.tables_elided,
        stats.join_build_rows,
        stats.join_probe_rows,
        stats.agg_input_rows,
    )
}

#[test]
fn all_queries_agree_across_threads_morsels_and_fusion() {
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).expect("generated XML is well-formed"));

    let mut query_texts: Vec<(String, String)> = queries()
        .iter()
        .map(|q| (format!("Q{}", q.id), q.text.to_string()))
        .collect();
    query_texts.push(("constructor".into(), CONSTRUCTOR_QUERY.into()));

    for fusion in [true, false] {
        // Reference: sequential, unpartitioned, this fusion setting.
        let reference_engine = engine(&doc, fusion, &CONFIGS[0]);
        let references: Vec<(String, usize, Totals)> = query_texts
            .iter()
            .map(|(name, text)| {
                let (result, stats) = profiled(&reference_engine, text)
                    .unwrap_or_else(|e| panic!("{name} failed on the reference: {e}"));
                (result.to_xml(), result.len(), totals(&stats))
            })
            .collect();

        for config in &CONFIGS[1..] {
            let pf = engine(&doc, fusion, config);
            for ((name, text), (ref_xml, ref_len, ref_totals)) in
                query_texts.iter().zip(&references)
            {
                let (result, stats) = profiled(&pf, text).unwrap_or_else(|e| {
                    panic!("{name} failed at {} (fusion {fusion}): {e}", config.label)
                });
                assert_eq!(
                    *ref_xml,
                    result.to_xml(),
                    "{name}: serialization diverges at {} (fusion {fusion})",
                    config.label
                );
                assert_eq!(
                    *ref_len,
                    result.len(),
                    "{name}: row count diverges at {} (fusion {fusion})",
                    config.label
                );
                assert_eq!(
                    *ref_totals,
                    totals(&stats),
                    "{name}: work totals diverge at {} (fusion {fusion})",
                    config.label
                );
            }
            // One pool, however many queries this configuration ran.
            if config.threads > 1 {
                assert_eq!(pf.worker_pool_spawns(), 1, "{}", config.label);
            } else {
                assert_eq!(pf.worker_pool_spawns(), 0, "{}", config.label);
            }
        }
    }
}

#[test]
fn join_heavy_queries_agree_across_the_full_matrix() {
    // Q8–Q12 are the join- and aggregate-heavy XMark queries; their
    // equi-joins build typed hash indexes and probe in morsels, and their
    // counts pre-aggregate per chunk.  The full cross product of thread
    // count × morsel size × fusion must serialize byte-identically, and
    // the kernel counters (join build/probe rows, aggregate input rows)
    // must be schedule-independent and non-zero.
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).expect("generated XML is well-formed"));

    for id in 8..=12u8 {
        let q = pathfinder::xmark::query(id).unwrap();
        let mut ref_xml: Option<String> = None;
        let mut ref_kernel: Option<(usize, usize, usize)> = None;
        for threads in [1usize, 4] {
            for morsel_rows in [2usize, 0, usize::MAX] {
                for fusion in [true, false] {
                    let pf = Pathfinder::with_options(EngineOptions {
                        threads,
                        morsel_rows,
                        fusion,
                        ..EngineOptions::default()
                    });
                    pf.load_parsed("auction.xml", &doc).unwrap();
                    let (result, stats) = profiled(&pf, q.text).unwrap_or_else(|e| {
                        panic!("Q{id} failed at t{threads}/m{morsel_rows}/f{fusion}: {e}")
                    });
                    let xml_out = result.to_xml();
                    match &ref_xml {
                        None => ref_xml = Some(xml_out),
                        Some(reference) => assert_eq!(
                            *reference, xml_out,
                            "Q{id}: serialization diverges at t{threads}/m{morsel_rows}/f{fusion}"
                        ),
                    }
                    // Joins and aggregates are breakers under either
                    // fusion setting, so the kernel counters agree across
                    // the whole matrix.
                    let kernel = (
                        stats.join_build_rows,
                        stats.join_probe_rows,
                        stats.agg_input_rows,
                    );
                    match &ref_kernel {
                        None => {
                            assert!(
                                kernel.1 > 0,
                                "Q{id}: a join-heavy query counted no probe rows"
                            );
                            ref_kernel = Some(kernel);
                        }
                        Some(reference) => assert_eq!(
                            *reference, kernel,
                            "Q{id}: kernel counters diverge at t{threads}/m{morsel_rows}/f{fusion}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn repeated_morselized_runs_are_stable() {
    // Re-running the same query on the same engine (same pool, hot plan
    // cache) must serialize identically every time.
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 7,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).unwrap());
    let pf = Pathfinder::with_options(EngineOptions {
        threads: 4,
        morsel_rows: 2,
        ..EngineOptions::default()
    });
    pf.load_parsed("auction.xml", &doc).unwrap();
    let q8 = pathfinder::xmark::query(8).unwrap();
    let first = pf.session().query(q8.text).expect("first morselized run");
    for _ in 0..3 {
        let again = pf
            .session()
            .query(q8.text)
            .expect("repeated morselized run");
        assert_eq!(first.to_xml(), again.to_xml());
    }
    assert_eq!(pf.worker_pool_spawns(), 1);
}
