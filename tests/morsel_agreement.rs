//! Determinism of the morsel-parallel executor on the persistent pool.
//!
//! Intra-operator parallelism must be invisible: partitioned sorts, row
//! numberings, staircase shards and chunked fused pipelines merge
//! deterministically, so the serialized result, the row counts and the
//! schedule-independent [`ExecStats`] totals of every query are
//! **byte-identical** across
//!
//! * thread counts (`1` — the sequential executor — vs `4`),
//! * morsel sizes (tiny — every big operator splits into many chunks —
//!   vs the default vs `∞` — no intra-operator partitioning at all), and
//! * fusion on/off (chunked pipelines vs chunked single operators).
//!
//! This suite pins that down for all 20 XMark queries plus a
//! constructor-heavy query, comparing every configuration against the
//! sequential, unpartitioned reference of the same fusion setting (work
//! totals differ *between* fusion settings by design — elided tables —
//! so the reference is per fusion flag).

use std::sync::Arc;

use pathfinder::engine::{
    EngineOptions, EngineResult, ExecStats, Pathfinder, Profile, QueryResult,
};
use pathfinder::xmark::{generate, queries, GeneratorConfig};

const CONSTRUCTOR_QUERY: &str = r#"for $p in doc("auction.xml")/site/people/person
return element card {
    attribute id { $p/@id },
    element who { $p/name/text() },
    element mail { element inner { $p/emailaddress/text() } },
    text { "person-card" }
}"#;

struct Config {
    threads: usize,
    morsel_rows: usize,
    label: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        threads: 1,
        morsel_rows: usize::MAX,
        label: "t1/∞",
    },
    Config {
        threads: 1,
        morsel_rows: 2,
        label: "t1/tiny",
    },
    Config {
        threads: 4,
        morsel_rows: usize::MAX,
        label: "t4/∞",
    },
    Config {
        threads: 4,
        morsel_rows: 0,
        label: "t4/default",
    },
    Config {
        threads: 4,
        morsel_rows: 2,
        label: "t4/tiny",
    },
];

fn profiled(pf: &Pathfinder, query: &str) -> EngineResult<(QueryResult, ExecStats)> {
    let outcome = pf.query_with(query, Profile::Stats)?;
    let stats = outcome.stats.expect("Profile::Stats returns stats");
    Ok((outcome.result, stats))
}

fn engine(xml_doc: &Arc<pathfinder::xml::Document>, fusion: bool, config: &Config) -> Pathfinder {
    let pf = Pathfinder::with_options(EngineOptions {
        threads: config.threads,
        morsel_rows: config.morsel_rows,
        fusion,
        ..EngineOptions::default()
    });
    pf.load_parsed("auction.xml", xml_doc).unwrap();
    pf
}

/// The schedule-independent slice of [`ExecStats`] (peaks legitimately
/// vary with scheduling and buffer sharing).
type Totals = (usize, usize, usize, usize, usize, usize);

fn totals(stats: &ExecStats) -> Totals {
    (
        stats.operators_evaluated,
        stats.rows_produced,
        stats.cells_produced,
        stats.evicted_results,
        stats.fused_ops,
        stats.tables_elided,
    )
}

#[test]
fn all_queries_agree_across_threads_morsels_and_fusion() {
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).expect("generated XML is well-formed"));

    let mut query_texts: Vec<(String, String)> = queries()
        .iter()
        .map(|q| (format!("Q{}", q.id), q.text.to_string()))
        .collect();
    query_texts.push(("constructor".into(), CONSTRUCTOR_QUERY.into()));

    for fusion in [true, false] {
        // Reference: sequential, unpartitioned, this fusion setting.
        let reference_engine = engine(&doc, fusion, &CONFIGS[0]);
        let references: Vec<(String, usize, Totals)> = query_texts
            .iter()
            .map(|(name, text)| {
                let (result, stats) = profiled(&reference_engine, text)
                    .unwrap_or_else(|e| panic!("{name} failed on the reference: {e}"));
                (result.to_xml(), result.len(), totals(&stats))
            })
            .collect();

        for config in &CONFIGS[1..] {
            let pf = engine(&doc, fusion, config);
            for ((name, text), (ref_xml, ref_len, ref_totals)) in
                query_texts.iter().zip(&references)
            {
                let (result, stats) = profiled(&pf, text).unwrap_or_else(|e| {
                    panic!("{name} failed at {} (fusion {fusion}): {e}", config.label)
                });
                assert_eq!(
                    *ref_xml,
                    result.to_xml(),
                    "{name}: serialization diverges at {} (fusion {fusion})",
                    config.label
                );
                assert_eq!(
                    *ref_len,
                    result.len(),
                    "{name}: row count diverges at {} (fusion {fusion})",
                    config.label
                );
                assert_eq!(
                    *ref_totals,
                    totals(&stats),
                    "{name}: work totals diverge at {} (fusion {fusion})",
                    config.label
                );
            }
            // One pool, however many queries this configuration ran.
            if config.threads > 1 {
                assert_eq!(pf.worker_pool_spawns(), 1, "{}", config.label);
            } else {
                assert_eq!(pf.worker_pool_spawns(), 0, "{}", config.label);
            }
        }
    }
}

#[test]
fn repeated_morselized_runs_are_stable() {
    // Re-running the same query on the same engine (same pool, hot plan
    // cache) must serialize identically every time.
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 7,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).unwrap());
    let pf = Pathfinder::with_options(EngineOptions {
        threads: 4,
        morsel_rows: 2,
        ..EngineOptions::default()
    });
    pf.load_parsed("auction.xml", &doc).unwrap();
    let q8 = pathfinder::xmark::query(8).unwrap();
    let first = pf.session().query(q8.text).expect("first morselized run");
    for _ in 0..3 {
        let again = pf
            .session()
            .query(q8.text)
            .expect("repeated morselized run");
        assert_eq!(first.to_xml(), again.to_xml());
    }
    assert_eq!(pf.worker_pool_spawns(), 1);
}
