//! Property tests for the index sidecar: on *random* documents the
//! index-accelerated path must agree with the scan path, and the raw
//! candidate sets must be supersets of the true matches.
//!
//! Two layers are pinned:
//!
//! * **Engine agreement** — a random shop document is queried with the
//!   three rewrite shapes (`contains`, attribute equality, numeric
//!   range) under `FULL` + indexes and under `BASIC` without; results
//!   (or errors) must be byte-identical.  The generator deliberately
//!   covers empty documents, repeated attribute values, non-numeric
//!   price strings and `Nat` values above `i64::MAX`.
//! * **Candidate supersets** — `evaluate_text_probe` /
//!   `evaluate_value_probe` over the sidecar of a random document must
//!   mark every truly-matching (or erroring) node as a candidate; the
//!   residual predicate can only ever *narrow* a candidate set, so a
//!   missed candidate would silently drop a result row.

use std::sync::Arc;

use proptest::prelude::*;

use pathfinder::engine::{EngineOptions, OptimizerLevel, Pathfinder};
use pathfinder::relational::ops::{self, CmpOp, UnaryOp};
use pathfinder::relational::Value;
use pathfinder::store::{DocStore, NodeKindCode};

/// A word pool small enough that repeats (and shared substrings) are
/// common: `goldfish` contains `gold`, `dusty` contains `dust`.
fn word() -> impl Strategy<Value = String> {
    proptest::sample::select(vec!["gold", "goldfish", "dust", "dusty", "red", "bag"])
        .prop_map(str::to_string)
}

/// A price string: small integers, two-decimal doubles, `Nat`s beyond
/// `i64::MAX`, and a non-numeric value (whose `fn:number` cast errors —
/// the index must keep it as a candidate so the error surfaces).
fn price() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..60).prop_map(|n| n.to_string()),
        (0i64..6000).prop_map(|c| format!("{}.{:02}", c / 100, c % 100)),
        (i64::MAX as u64 + 1..u64::MAX).prop_map(|n| n.to_string()),
        Just("n/a".to_string()),
    ]
}

/// A random shop document: zero or more items, ids repeating modulo 4.
fn document() -> impl Strategy<Value = String> {
    proptest::collection::vec((word(), word(), price()), 0..10).prop_map(|items| {
        let mut xml = String::from("<site>");
        for (i, (w1, w2, p)) in items.iter().enumerate() {
            xml.push_str(&format!(
                "<item id=\"id{}\"><name>{w1} {w2}</name><price>{p}</price></item>",
                i % 4
            ));
        }
        xml.push_str("</site>");
        xml
    })
}

fn engine(
    doc: &Arc<pathfinder::xml::Document>,
    level: OptimizerLevel,
    indexes: bool,
) -> Pathfinder {
    let pf = Pathfinder::with_options(
        EngineOptions::builder()
            .optimizer_level(level)
            .indexes(indexes)
            .threads(1)
            .build(),
    );
    pf.load_parsed("d.xml", doc)
        .expect("shredding cannot fail on a parsed document");
    pf
}

/// Run `query` with and without the index path; fold each outcome to a
/// comparable `Result<String, String>`.
fn both_paths(xml: &str, query: &str) -> (Result<String, String>, Result<String, String>) {
    let doc = Arc::new(pathfinder::xml::parse(xml).expect("generated document is well-formed"));
    let run = |level, indexes| {
        engine(&doc, level, indexes)
            .session()
            .query(query)
            .map(|r| r.to_xml())
            .map_err(|e| e.to_string())
    };
    (
        run(OptimizerLevel::BASIC, false),
        run(OptimizerLevel::FULL, true),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `contains()` over random documents: indexed == scan, including
    /// needles that match nothing, match everything, differ only in
    /// case (the token index is case-folded, `fn:contains` is not), or
    /// are substrings of longer tokens.
    #[test]
    fn contains_agrees_between_index_and_scan(
        xml in document(),
        needle in proptest::sample::select(vec!["gold", "GOLD", "old", "dust fish", "zzz", "d"]),
    ) {
        let query = format!(
            "for $i in doc(\"d.xml\")/site//item \
             where contains(string($i/name), \"{needle}\") \
             return $i/price/text()"
        );
        let (scan, indexed) = both_paths(&xml, &query);
        prop_assert_eq!(scan, indexed);
    }

    /// Attribute equality over repeated values: indexed == scan.
    #[test]
    fn attribute_equality_agrees_between_index_and_scan(
        xml in document(),
        id in proptest::sample::select(vec!["id0", "id3", "id9", ""]),
    ) {
        let query = format!(
            "for $i in doc(\"d.xml\")/site/item[@id = \"{id}\"] return $i/name/text()"
        );
        let (scan, indexed) = both_paths(&xml, &query);
        prop_assert_eq!(scan, indexed);
    }

    /// Numeric range predicates: indexed == scan, including bounds that
    /// only huge `Nat` prices exceed and documents whose `n/a` price
    /// makes `fn:number` error on both paths identically.
    #[test]
    fn numeric_range_agrees_between_index_and_scan(
        xml in document(),
        bound in prop_oneof![
            (0i64..80).prop_map(|b| b.to_string()),
            Just((i64::MAX as u64 + 2).to_string()),
        ],
        op in proptest::sample::select(vec![">=", "<", "="]),
    ) {
        let query = format!(
            "count(for $i in doc(\"d.xml\")/site/item \
             where number($i/price) {op} {bound} \
             return $i/price)"
        );
        let (scan, indexed) = both_paths(&xml, &query);
        prop_assert_eq!(scan, indexed);
    }

    /// Every node whose string value case-sensitively contains the
    /// needle must be a text-index candidate (the candidate set is a
    /// case-folded superset; the residual only narrows).
    #[test]
    fn text_candidates_are_a_superset_of_contains_matches(
        xml in document(),
        needle in proptest::sample::select(vec!["gold", "old", "dust fish", "zzz", "d", "Gold"]),
    ) {
        let store = DocStore::from_xml("d.xml", &xml).unwrap();
        let Some(cands) = ops::evaluate_text_probe(&store.indexes().text, needle) else {
            // No alphanumeric fragment: the executor keeps every row.
            return;
        };
        for pre in 0..store.node_count() as u32 {
            if store.string_value(pre).contains(needle) {
                prop_assert!(
                    ops::text_row_is_candidate(&store, &cands, pre),
                    "node {pre} ({:?}) matches {needle:?} but is not a candidate",
                    store.string_value(pre)
                );
            }
        }
    }

    /// Every element whose content matches — or errors under — the
    /// replicated `fn:number` + compare pipeline must be a value-index
    /// candidate.
    #[test]
    fn value_candidates_are_a_superset_of_range_matches(
        xml in document(),
        bound in prop_oneof![
            (0u64..80).prop_map(Value::Nat),
            Just(Value::Nat(i64::MAX as u64 + 2)),
            (0.0f64..60.0).prop_map(Value::Dbl),
        ],
        op in proptest::sample::select(vec![CmpOp::Ge, CmpOp::Lt, CmpOp::Eq]),
    ) {
        let store = DocStore::from_xml("d.xml", &xml).unwrap();
        let Some(index) = store.indexes().element_index(&store, "price") else {
            // No <price> element in this document: nothing to check.
            return;
        };
        let cands = ops::evaluate_value_probe(index, &store.texts, op, &bound, true);
        for pre in 0..store.node_count() as u32 {
            if store.kind_of(pre) != NodeKindCode::Element || store.tag_of(pre) != "price" {
                continue;
            }
            let content = store.string_value(pre);
            let must_keep = match ops::map::apply_unary(UnaryOp::ToNumber, &Value::Str(content.clone())) {
                Err(_) => true, // cast error must surface in the residual
                Ok(n) => match n.compare(&bound) {
                    Err(_) => true,
                    Ok(ordering) => op.matches(ordering),
                },
            };
            if must_keep {
                prop_assert!(
                    cands.contains_pre(pre),
                    "price node {pre} ({content:?}) matches {op:?} {bound:?} but is not a candidate"
                );
            }
        }
    }

    /// Attribute equality candidates: every attribute value equal to the
    /// probed literal must appear in the candidate value set (attribute
    /// steps test membership on the *string*, not the pre rank).
    #[test]
    fn attribute_candidates_cover_equal_values(
        xml in document(),
        id in proptest::sample::select(vec!["id0", "id3", ""]),
    ) {
        let store = DocStore::from_xml("d.xml", &xml).unwrap();
        let Some(index) = store.indexes().attribute_index(&store, "id") else {
            return;
        };
        let cands = ops::evaluate_value_probe(
            index,
            &store.texts,
            CmpOp::Eq,
            &Value::Str(id.to_string()),
            false,
        );
        for attr in 0..store.attribute_count() {
            if store.attr_name_of(attr) == "id" && store.attr_value_of(attr) == id {
                prop_assert!(
                    cands.values.iter().any(|v| v == id),
                    "attribute value {id:?} exists but is missing from the candidates"
                );
            }
        }
    }
}

/// The degenerate corners outside the generator's reach: a document with
/// no items at all and a document whose every value collides.
#[test]
fn empty_and_all_equal_documents_agree() {
    for xml in [
        "<site></site>",
        "<site><item id=\"a\"><name>gold</name><price>42</price></item>\
         <item id=\"a\"><name>gold</name><price>42</price></item>\
         <item id=\"a\"><name>gold</name><price>42</price></item></site>",
    ] {
        for query in [
            "for $i in doc(\"d.xml\")/site//item \
             where contains(string($i/name), \"gold\") return $i/price/text()",
            "for $i in doc(\"d.xml\")/site/item[@id = \"a\"] return $i/name/text()",
            "count(for $i in doc(\"d.xml\")/site/item \
             where number($i/price) >= 40 return $i/price)",
        ] {
            let (scan, indexed) = both_paths(xml, query);
            assert_eq!(scan, indexed, "query {query:?} diverges on {xml:?}");
        }
    }
}
