//! Index-scan vs. full-scan agreement through `pf-engine`.
//!
//! The `indexscan` optimizer rule replaces recognized content predicates
//! with sidecar-index candidate filters plus the untouched residual
//! predicate.  The rewrite is required to be byte-invisible: every XMark
//! query must serialize identically with indexes on and off, across
//! optimizer levels and thread counts.  A second test pins the rule's
//! coverage — the queries it is designed for must actually rewrite — and a
//! third checks that the executor reports index telemetry when a rewritten
//! plan runs.

use std::sync::Arc;

use pathfinder::engine::{EngineOptions, OptimizerLevel, Pathfinder, Profile};
use pathfinder::xmark::{generate, queries, GeneratorConfig};

fn engine(
    doc: &Arc<pathfinder::xml::Document>,
    level: OptimizerLevel,
    indexes: bool,
    threads: usize,
) -> Pathfinder {
    let pf = Pathfinder::with_options(
        EngineOptions::builder()
            .optimizer_level(level)
            .indexes(indexes)
            .threads(threads)
            .build(),
    );
    pf.load_parsed("auction.xml", doc)
        .expect("shredding cannot fail on a parsed document");
    pf
}

#[test]
fn index_scans_serialize_identically_to_full_scans_on_all_xmark_queries() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).unwrap());

    // Reference: no indexes, basic level, sequential.
    let reference = engine(&doc, OptimizerLevel::BASIC, false, 1);
    let mut expected: Vec<String> = Vec::new();
    for q in queries() {
        let result = reference
            .session()
            .query(q.text)
            .unwrap_or_else(|e| panic!("Q{} failed on the reference engine: {e}", q.id));
        expected.push(result.to_xml());
    }

    for level in [OptimizerLevel::BASIC, OptimizerLevel::FULL] {
        for indexes in [false, true] {
            for threads in [1, 4] {
                let pf = engine(&doc, level, indexes, threads);
                for (q, expected) in queries().iter().zip(&expected) {
                    let result = pf.session().query(q.text).unwrap_or_else(|e| {
                        panic!(
                            "Q{} failed (level = {level}, indexes = {indexes}, \
                             threads = {threads}): {e}",
                            q.id
                        )
                    });
                    assert_eq!(
                        *expected,
                        result.to_xml(),
                        "Q{} diverges from the scan reference (level = {level}, \
                         indexes = {indexes}, threads = {threads})",
                        q.id
                    );
                }
            }
        }
    }
}

#[test]
fn index_scan_rule_fires_on_the_predicate_queries() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).unwrap());
    let pf = engine(&doc, OptimizerLevel::FULL, true, 1);

    let mut fired: Vec<u8> = Vec::new();
    for q in queries() {
        let explain = pf
            .explain(q.text)
            .unwrap_or_else(|e| panic!("Q{} explain failed: {e}", q.id));
        if explain.report.index_scans_introduced > 0 {
            fired.push(q.id);
        }
    }
    // Q14's contains() predicate is the rewrite's flagship; Q5's numeric
    // range is the value-index counterpart.
    for must in [5, 14] {
        assert!(
            fired.contains(&must),
            "the indexscan rule no longer fires on Q{must} (fired on {fired:?})"
        );
    }

    // With indexes disabled the same engine configuration must not
    // introduce a single scan (the A/B switch really is a switch).
    let off = engine(&doc, OptimizerLevel::FULL, false, 1);
    for q in queries() {
        let explain = off.explain(q.text).unwrap();
        assert_eq!(
            explain.report.index_scans_introduced, 0,
            "Q{} rewrote despite indexes being disabled",
            q.id
        );
    }
}

#[test]
fn executors_report_index_telemetry_for_rewritten_plans() {
    let xml = generate(&GeneratorConfig {
        scale: 0.004,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).unwrap());
    let q14 = queries().into_iter().find(|q| q.id == 14).unwrap();

    let on = engine(&doc, OptimizerLevel::FULL, true, 1);
    let outcome = on.query_with(q14.text, Profile::Stats).unwrap();
    let stats = outcome.stats.unwrap();
    assert!(
        stats.index_lookups > 0,
        "Q14 ran without a single index probe: {stats:?}"
    );

    let off = engine(&doc, OptimizerLevel::FULL, false, 1);
    let outcome = off.query_with(q14.text, Profile::Stats).unwrap();
    let stats = outcome.stats.unwrap();
    assert_eq!(
        stats.index_lookups, 0,
        "indexes are disabled, yet the executor probed one"
    );
}
