//! Concurrent serving must be invisible in the results.
//!
//! PR 6 made one engine serve many queries at once: sessions share the
//! plan cache, the worker pool and the document registry, queries run as
//! query-tagged jobs with round-robin fairness, and every admitted query
//! reads a frozen registry snapshot.  None of that may change a single
//! byte of output.  This suite pins down the three contracts:
//!
//! * **Agreement** — N sessions running the whole XMark set concurrently
//!   (each in a different order) serialize byte-identically to a
//!   sequential run on a fresh engine, with no per-query thread spawns.
//! * **Snapshot isolation** — documents reloaded *while queries are in
//!   flight* never tear an admitted query's reads: a query that scans the
//!   same document twice always sees one version, even though the
//!   registry flips between versions under it.
//! * **Admission control** — with the memory budget saturated, the next
//!   query with a known footprint demonstrably queues (it is *waiting*,
//!   not running) and completes once budget frees up.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pathfinder::engine::{EngineOptions, Pathfinder, Profile};
use pathfinder::xmark::{generate, queries, GeneratorConfig};

const SESSIONS: usize = 4;

#[test]
fn concurrent_sessions_agree_with_a_sequential_run() {
    let xml = generate(&GeneratorConfig {
        scale: 0.003,
        seed: 20050831,
    });
    let doc = Arc::new(pathfinder::xml::parse(&xml).expect("generated XML is well-formed"));

    // Sequential reference on its own engine.
    let reference_engine = Pathfinder::new();
    reference_engine.load_parsed("auction.xml", &doc).unwrap();
    let reference: Vec<String> = queries()
        .iter()
        .map(|q| {
            reference_engine
                .session()
                .query(q.text)
                .unwrap_or_else(|e| panic!("Q{} failed sequentially: {e}", q.id))
                .to_xml()
        })
        .collect();

    // N sessions on one shared engine, all running the whole set
    // concurrently — each starting at a different offset so the in-flight
    // mix differs the whole time.
    let pf = Pathfinder::new();
    pf.load_parsed("auction.xml", &doc).unwrap();
    std::thread::scope(|scope| {
        for offset in 0..SESSIONS {
            let session = pf.session();
            let reference = &reference;
            scope.spawn(move || {
                let qs = queries();
                for i in 0..qs.len() {
                    let q = &qs[(i + offset * 5) % qs.len()];
                    let result = session
                        .query(q.text)
                        .unwrap_or_else(|e| panic!("Q{} failed concurrently: {e}", q.id));
                    assert_eq!(
                        reference[(i + offset * 5) % qs.len()],
                        result.to_xml(),
                        "Q{} diverges under concurrent serving (session offset {offset})",
                        q.id
                    );
                }
            });
        }
    });
    // However many queries ran in parallel, the engine spawned at most one
    // worker pool (zero on the sequential path) — never a per-query one.
    assert!(
        pf.worker_pool_spawns() <= 1,
        "per-query pool creation: {} spawns",
        pf.worker_pool_spawns()
    );
}

#[test]
fn reloads_during_in_flight_queries_do_not_tear_snapshots() {
    // Version A has 1 <b>, version B has 3: a query that counts twice in
    // one evaluation must see the *same* version both times, so the only
    // possible answers are 11 and 33 — a 13 or 31 is a torn snapshot.
    let torn_detector = "fn:count(fn:doc(\"d.xml\")//b) * 10 + fn:count(fn:doc(\"d.xml\")//b)";
    let pf = Pathfinder::new();
    pf.load_document("d.xml", "<a><b/></a>").unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let pf = &pf;
        let stop = &stop;
        // The loader flips the document between the two versions.
        scope.spawn(move || {
            let mut version = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let xml = if version.is_multiple_of(2) {
                    "<a><b/><b/><b/></a>"
                } else {
                    "<a><b/></a>"
                };
                pf.load_document("d.xml", xml).unwrap();
                version += 1;
            }
        });
        for _ in 0..2 {
            let session = pf.session();
            scope.spawn(move || {
                for _ in 0..150 {
                    let out = session.query(torn_detector).unwrap().to_xml();
                    assert!(
                        out == "11" || out == "33",
                        "torn snapshot: both counts must see one version, got {out}"
                    );
                }
            });
        }
        // Scoped: the query threads finish first in program order below.
        scope.spawn(move || {
            // Give the queriers a moment against the loader, then stop it.
            std::thread::sleep(std::time::Duration::from_millis(200));
            stop.store(true, Ordering::Relaxed);
        });
    });
    stop.store(true, Ordering::Relaxed);
}

#[test]
fn a_query_with_a_known_footprint_queues_when_the_budget_is_saturated() {
    let pf = Pathfinder::with_options(EngineOptions::builder().memory_budget_rows(1_000).build());
    pf.load_document("d.xml", "<a><b>1</b><b>2</b><b>3</b></a>")
        .unwrap();
    let q = "for $b in fn:doc(\"d.xml\")//b return fn:string($b)";

    // Warm run: records the plan's real peak_resident_rows, so the next
    // run is admitted against a non-zero estimate.
    let warm = pf.query_with(q, Profile::Stats).unwrap();
    let peak = warm.stats.unwrap().peak_resident_rows;
    assert!(peak > 0, "the FLWOR holds intermediate rows");
    let expected = warm.to_xml();

    // Saturate the budget from the outside (standing in for a running
    // heavy query), then submit the warm query from another session.
    let saturating = pf.admission().admit(1_000);
    let finished = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let pf = &pf;
        let finished = &finished;
        let expected = &expected;
        scope.spawn(move || {
            let out = pf.session().query(q).unwrap();
            assert_eq!(&out.to_xml(), expected);
            finished.store(true, Ordering::SeqCst);
        });
        // The query registers as waiting — it is queued, not running.
        while pf.admission().stats().waiting == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !finished.load(Ordering::SeqCst),
            "query ran although the budget was saturated"
        );
        let stats = pf.admission().stats();
        assert_eq!(stats.waiting, 1);
        assert_eq!(stats.running, 1);
        assert_eq!(stats.charged_rows, 1_000);
        // Free the budget: the queued query is admitted and completes.
        drop(saturating);
    });
    assert!(finished.load(Ordering::SeqCst));
    let stats = pf.admission().stats();
    assert_eq!(stats.waited, 1);
    assert_eq!(stats.waiting, 0);
    assert_eq!(stats.running, 0);
}

#[test]
fn a_cold_plan_queues_on_its_shape_estimate() {
    // A plan that has NEVER executed has no recorded peak — it used to be
    // admitted at estimate 0 and sail past a saturated budget.  The cold
    // estimate is now seeded from the plan shape (the referenced
    // document's node count), so the very first run queues like a warm
    // one.
    let pf = Pathfinder::with_options(EngineOptions::builder().memory_budget_rows(1_000).build());
    pf.load_document("d.xml", "<a><b>1</b><b>2</b><b>3</b></a>")
        .unwrap();
    let q = "for $b in fn:doc(\"d.xml\")//b return fn:string($b)";
    // Reference output from a separate engine, so `pf`'s plan cache stays
    // cold (a run on `pf` itself would record a peak).
    let reference = {
        let fresh = Pathfinder::new();
        fresh
            .load_document("d.xml", "<a><b>1</b><b>2</b><b>3</b></a>")
            .unwrap();
        fresh.session().query(q).unwrap().to_xml()
    };

    let saturating = pf.admission().admit(1_000);
    let finished = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let pf = &pf;
        let finished = &finished;
        let reference = &reference;
        scope.spawn(move || {
            let out = pf.session().query(q).unwrap();
            assert_eq!(&out.to_xml(), reference);
            finished.store(true, Ordering::SeqCst);
        });
        // The cold query registers as waiting instead of slipping through
        // at estimate 0.
        while pf.admission().stats().waiting == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !finished.load(Ordering::SeqCst),
            "cold query ran although the budget was saturated"
        );
        assert_eq!(pf.admission().stats().waiting, 1);
        drop(saturating);
    });
    assert!(finished.load(Ordering::SeqCst));
    assert_eq!(pf.admission().stats().waited, 1);
}

#[test]
fn admitted_queries_keep_their_snapshot_across_a_reload() {
    // Deterministic version of the isolation contract: admission happens
    // at query start, so a load *between* two queries is visible, but the
    // engine registry changing *after* admission is not.  We simulate the
    // in-flight case directly through the registry snapshot the engine
    // takes per query.
    let pf = Pathfinder::new();
    pf.load_document("d.xml", "<a><b/></a>").unwrap();
    let before = pf.registry().snapshot();
    pf.load_document("d.xml", "<a><b/><b/><b/></a>").unwrap();
    // The pre-reload snapshot still resolves the old version (document
    // node + <a> + one <b>)…
    assert_eq!(before.store(0).unwrap().node_count(), 3);
    // …while new queries see the reload.
    assert_eq!(
        pf.session()
            .query("fn:count(fn:doc(\"d.xml\")//b)")
            .unwrap()
            .to_xml(),
        "3"
    );
}
