//! Soundness of the static property inference (`PlanProperties`).
//!
//! The plan verifier's semantic checks only mean something if the
//! properties they compare are *true*: a key set the analysis claims
//! must actually hold no duplicates in the executed output, a column it
//! claims constant must actually carry one value, and the inferred
//! schema must be the executed table's schema — column for column, in
//! order.  This suite generates randomized literal-table plans (the
//! shapes the isolation rules rewrite: projections, selections, joins,
//! unions, distinct, attach), executes them, and checks every claim the
//! analysis makes against the actual table — both on the raw plan and
//! after a `full`-level optimization pass.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pathfinder::algebra::{
    optimize_with, AlgOp, NoStats, OptimizerLevel, Plan, PlanBuilder, PlanProperties,
};
use pathfinder::engine::{DocRegistry, Executor};
use pathfinder::relational::{Table, Value};

/// Execute a literal-only plan.
fn run(plan: &Plan) -> Table {
    let registry = DocRegistry::new();
    Executor::new(&registry)
        .run(plan)
        .expect("literal plan executes")
}

/// Assert every property claimed at the plan root against the executed
/// table.
fn assert_sound(plan: &Plan, label: &str) {
    let props = PlanProperties::analyze(plan);
    let root = plan.root();
    let table = run(plan);

    // Schema: the claimed columns are the table's columns, in order.
    let claimed: Vec<&str> = props.columns(root).iter().map(|c| c.as_str()).collect();
    prop_assert_eq!(
        claimed.clone(),
        table.column_names(),
        "{}: inferred schema diverges from executed schema",
        label
    );

    // Keys: projecting the rows onto a claimed key set must not produce
    // duplicates (an empty key set claims at most one row).
    for key in props.keys(root) {
        let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
        for r in 0..table.row_count() {
            let tuple: Vec<String> = key
                .iter()
                .map(|col| format!("{:?}", table.value(col, r).expect("key column exists")))
                .collect();
            prop_assert!(
                seen.insert(tuple),
                "{}: claimed key {:?} has duplicate rows",
                label,
                key
            );
        }
    }

    // Constants: a claimed constant column carries one value across all
    // rows; a statically known value must be that value.
    for (col, known) in props.constants(root) {
        let mut first: Option<Value> = None;
        for r in 0..table.row_count() {
            let v = table.value(col, r).expect("constant column exists");
            if let Some(expected) = known {
                prop_assert_eq!(
                    &v,
                    expected,
                    "{}: column `{}` claimed constant {:?}",
                    label,
                    col,
                    known
                );
            }
            match &first {
                None => first = Some(v),
                Some(f) => prop_assert_eq!(
                    &v,
                    f,
                    "{}: column `{}` claimed constant but varies",
                    label,
                    col
                ),
            }
        }
    }

    // Row estimate: not a correctness claim, but it must at least be a
    // finite, non-negative number for a literal-only plan.
    let rows = props.rows(root);
    prop_assert!(
        rows.is_finite() && rows >= 0.0,
        "{}: nonsensical row estimate {}",
        label,
        rows
    );
}

fn nat_rows(cols: usize, values: &[Vec<u64>]) -> Vec<Vec<Value>> {
    values
        .iter()
        .map(|row| (0..cols).map(|c| Value::Nat(row[c])).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// σ over π over ⋈ with an attached constant — the pushdown shape.
    #[test]
    fn selection_join_shapes_are_sound(
        left in proptest::collection::vec((0u64..5, 0u64..40), 1..12),
        right in proptest::collection::vec((0u64..5, 0u64..6), 0..12),
        pick in 0u64..6,
        tag in 0u64..100,
    ) {
        let mut b = PlanBuilder::new();
        let lrows: Vec<Vec<u64>> = left
            .iter()
            .enumerate()
            .map(|(i, (a, p))| vec![i as u64 + 1, *p, *a])
            .collect();
        let l = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "pos".into(), "a".into()],
            rows: nat_rows(3, &lrows),
        });
        let rrows: Vec<Vec<u64>> = right.iter().map(|(k, v)| vec![*k, *v]).collect();
        let r = b.add(AlgOp::Lit {
            columns: vec!["k".into(), "v".into()],
            rows: nat_rows(2, &rrows),
        });
        let j = b.add(AlgOp::EquiJoin {
            left: l,
            right: r,
            left_col: "a".into(),
            right_col: "k".into(),
        });
        let at = b.add(AlgOp::Attach {
            input: j,
            target: "tag".into(),
            value: Value::Nat(tag),
        });
        let p = b.add(AlgOp::Project {
            input: at,
            columns: vec![
                ("iter".into(), "iter".into()),
                ("pos".into(), "pos".into()),
                ("v".into(), "val".into()),
                ("tag".into(), "tag".into()),
            ],
        });
        let s = b.add(AlgOp::SelectEq {
            input: p,
            column: "val".into(),
            value: Value::Nat(pick),
        });
        let plan = b.finish(s);

        assert_sound(&plan, "raw");
        let mut optimized = plan;
        optimize_with(&mut optimized, OptimizerLevel::FULL, &NoStats);
        assert_sound(&optimized, "optimized");
    }

    /// ∪ / distinct over shared branches — the dedup/unshare shape.
    #[test]
    fn union_distinct_shapes_are_sound(
        rows in proptest::collection::vec((0u64..4, 0u64..4), 0..10),
        sel in 0u64..4,
        dedup_branches in proptest::bool::ANY,
    ) {
        let mut b = PlanBuilder::new();
        let mk = |b: &mut PlanBuilder, rows: &[(u64, u64)], sel: u64| {
            let lit_rows: Vec<Vec<u64>> = rows.iter().map(|(a, v)| vec![*a, *v]).collect();
            let l = b.add(AlgOp::Lit {
                columns: vec!["a".into(), "v".into()],
                rows: nat_rows(2, &lit_rows),
            });
            b.add(AlgOp::SelectEq {
                input: l,
                column: "v".into(),
                value: Value::Nat(sel),
            })
        };
        let s1 = mk(&mut b, &rows, sel);
        let s2 = if dedup_branches { s1 } else { mk(&mut b, &rows, sel) };
        let u = b.add(AlgOp::Union { left: s1, right: s2 });
        let d = b.add(AlgOp::Distinct { input: u });
        let plan = b.finish(d);

        assert_sound(&plan, "raw");
        let mut optimized = plan;
        optimize_with(&mut optimized, OptimizerLevel::FULL, &NoStats);
        assert_sound(&optimized, "optimized");
    }

    /// Row numbering and aggregation — the key-introducing operators.
    #[test]
    fn rownum_aggregate_shapes_are_sound(
        vals in proptest::collection::vec((1u64..4, 0u64..9), 1..14),
    ) {
        let mut b = PlanBuilder::new();
        let rows: Vec<Vec<u64>> = vals.iter().map(|(g, v)| vec![*g, *v]).collect();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: nat_rows(2, &rows),
        });
        let rn = b.add(AlgOp::RowNum {
            input: lit,
            target: "pos".into(),
            order_by: vec![pathfinder::algebra::SortSpec::asc("item")],
            partition: Some("iter".into()),
        });
        let plan = b.finish(rn);
        assert_sound(&plan, "rownum");

        let mut b = PlanBuilder::new();
        let lit = b.add(AlgOp::Lit {
            columns: vec!["iter".into(), "item".into()],
            rows: nat_rows(2, &rows),
        });
        let agg = b.add(AlgOp::Aggregate {
            input: lit,
            group: "iter".into(),
            target: "n".into(),
            func: pathfinder::relational::ops::AggFunc::Count,
            value: "item".into(),
        });
        let plan = b.finish(agg);
        assert_sound(&plan, "aggregate");
    }
}
