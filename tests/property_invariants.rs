//! Property-based tests over the core data structures and invariants:
//!
//! * the `pre|size|level` encoding of randomly generated trees,
//! * equivalence of the staircase join and the naive region evaluation on
//!   every recursive axis,
//! * XML escape/parse/serialize round trips,
//! * algebraic properties of the relational operators, and
//! * stability of query results under the peephole optimizer for randomly
//!   shaped (small) FLWOR queries.

use proptest::prelude::*;

use pathfinder::relational::ops::{distinct, equi_join, row_number, union_disjoint};
use pathfinder::relational::{Column, Table};
use pathfinder::store::{naive_axis_step, staircase_join, Axis, DocStore, NodeTest};
use pathfinder::xml::{parse, Document, DocumentBuilder};

/// Build a random tree with `spec` interpreted as a nesting script: numbers
/// push children, `true` closes the current element.
fn random_document(script: &[(u8, bool)]) -> Document {
    let mut builder = DocumentBuilder::new();
    let tags = ["a", "b", "c", "item", "person"];
    builder.start_element("root", vec![]);
    let mut depth = 1;
    for (tag_index, close) in script {
        if *close && depth > 1 {
            builder.end_element();
            depth -= 1;
        } else {
            builder.start_element(tags[*tag_index as usize % tags.len()], vec![]);
            depth += 1;
        }
    }
    while depth > 0 {
        builder.end_element();
        depth -= 1;
    }
    builder.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pre_size_level_invariants(script in proptest::collection::vec((0u8..5, proptest::bool::ANY), 1..60)) {
        let doc = random_document(&script);
        let store = DocStore::from_document("t", &doc);
        let n = store.node_count() as u32;
        // The document node covers every other node.
        prop_assert_eq!(store.size_of(0) + 1, n);
        for pre in 0..n {
            let size = store.size_of(pre);
            let level = store.level_of(pre);
            // Subtrees fit inside the document.
            prop_assert!(pre + size < n);
            // Children of pre lie within its subtree and are one level deeper.
            for child in store.children_of(pre) {
                prop_assert!(child > pre && child <= pre + size);
                prop_assert_eq!(store.level_of(child), level + 1);
                prop_assert_eq!(store.parent_of(child), Some(pre));
            }
            // size(v) equals the sum of the children's sizes plus the child count.
            let children = store.children_of(pre);
            let sum: u32 = children.iter().map(|&c| store.size_of(c) + 1).sum();
            prop_assert_eq!(size, sum);
        }
    }

    #[test]
    fn staircase_join_equals_naive_evaluation(
        script in proptest::collection::vec((0u8..5, proptest::bool::ANY), 1..60),
        raw_context in proptest::collection::vec(0u32..60, 1..10),
    ) {
        let doc = random_document(&script);
        let store = DocStore::from_document("t", &doc);
        let n = store.node_count() as u32;
        let mut context: Vec<u32> = raw_context.into_iter().map(|c| c % n).collect();
        context.sort_unstable();
        context.dedup();
        for axis in [Axis::Descendant, Axis::DescendantOrSelf, Axis::Ancestor, Axis::AncestorOrSelf, Axis::Following, Axis::Preceding] {
            for test in [NodeTest::AnyNode, NodeTest::AnyElement, NodeTest::Element("item".into())] {
                let fast = staircase_join(&store, &context, axis, &test);
                let slow = naive_axis_step(&store, &context, axis, &test);
                prop_assert_eq!(fast, slow, "axis {:?} test {:?}", axis, test);
            }
        }
    }

    #[test]
    fn xml_roundtrip_is_stable(script in proptest::collection::vec((0u8..5, proptest::bool::ANY), 1..40), text in "[ a-zA-Z0-9<>&']{0,12}") {
        let mut builder = DocumentBuilder::new();
        builder.start_element("root", vec![pathfinder::xml::Attribute { name: "t".into(), value: text.clone() }]);
        builder.text(text.clone());
        builder.end_element();
        let doc = builder.finish();
        let xml = doc.node_to_xml(doc.root());
        let reparsed = parse(&xml);
        // Whitespace-only text nodes are stripped by the default parser
        // options, so only compare when the text survives.
        if !text.trim().is_empty() {
            let reparsed = reparsed.unwrap();
            prop_assert_eq!(reparsed.node_to_xml(reparsed.root()), xml);
        }
        // Random structural documents always round-trip.
        let doc = random_document(&script);
        let xml = doc.node_to_xml(doc.root());
        let reparsed = parse(&xml).unwrap();
        prop_assert_eq!(reparsed.node_to_xml(reparsed.root()), xml);
    }

    #[test]
    fn relational_operator_properties(
        keys in proptest::collection::vec(0u64..20, 1..40),
        values in proptest::collection::vec(0i64..100, 1..40),
    ) {
        let n = keys.len().min(values.len());
        let table = Table::new(vec![
            ("iter".into(), Column::nats(keys[..n].to_vec())),
            ("item".into(), Column::ints(values[..n].to_vec())),
        ]).unwrap();

        // distinct is idempotent.
        let d1 = distinct(&table).unwrap();
        let d2 = distinct(&d1).unwrap();
        prop_assert_eq!(d1.row_count(), d2.row_count());
        prop_assert!(d1.row_count() <= table.row_count());

        // union with an empty relation of the same schema is identity.
        let empty = Table::new(vec![
            ("iter".into(), Column::nats(vec![])),
            ("item".into(), Column::ints(vec![])),
        ]).unwrap();
        let u = union_disjoint(&table, &empty).unwrap();
        prop_assert_eq!(u.row_count(), table.row_count());

        // row numbering assigns 1..k within every partition.
        let numbered = row_number(&table, "rank", &["item"], Some("iter")).unwrap();
        for row in 0..numbered.row_count() {
            let rank = numbered.value("rank", row).unwrap().as_nat().unwrap();
            prop_assert!(rank >= 1 && rank as usize <= table.row_count());
        }

        // joining on a key with itself (renamed) yields at least the row count
        // of the distinct keys, and every output row has matching key columns.
        let renamed = Table::new(vec![
            ("iter2".into(), table.column("iter").unwrap().clone()),
            ("item2".into(), table.column("item").unwrap().clone()),
        ]).unwrap();
        let joined = equi_join(&table, &renamed, "iter", "iter2").unwrap();
        prop_assert!(joined.row_count() >= table.row_count());
        for row in 0..joined.row_count() {
            prop_assert_eq!(
                joined.value("iter", row).unwrap().as_nat().unwrap(),
                joined.value("iter2", row).unwrap().as_nat().unwrap()
            );
        }
    }

    #[test]
    fn optimizer_preserves_results_on_random_arithmetic_flwors(
        items in proptest::collection::vec(-50i64..50, 1..6),
        offset in -100i64..100,
    ) {
        use pathfinder::engine::{EngineOptions, Pathfinder};

        let sequence = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let query = format!("for $v in ({sequence}) return $v + {offset}");
        let optimized = Pathfinder::new();
        let unoptimized = Pathfinder::with_options(EngineOptions { optimize: false, ..Default::default() });
        let a = optimized.session().query(&query).unwrap().to_xml();
        let b = unoptimized.session().query(&query).unwrap().to_xml();
        prop_assert_eq!(&a, &b);
        let expected = items.iter().map(|i| (i + offset).to_string()).collect::<Vec<_>>().join(" ");
        prop_assert_eq!(a, expected);
    }
}
