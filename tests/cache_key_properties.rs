//! Property tests for the plan-cache key normalization
//! (`pf_engine::normalize_cache_key`) plus a regression test pinning the
//! constructor content gather to linear scaling.
//!
//! The cache folds trivially-reformatted queries onto one key by
//! collapsing whitespace runs *outside* string literals.  The invariant
//! that keeps the cache sound: **distinct queries never fold onto one
//! key** — literal bodies survive verbatim (whitespace inside them is
//! significant), quotes inside (possibly nested) comments must not
//! desynchronize the literal tracking, the doubled-quote escape
//! round-trips, and unterminated literals or comments must not panic.

use proptest::prelude::*;

use pathfinder::engine::normalize_cache_key;

/// A whitespace run (the only thing normalization may rewrite).
fn whitespace() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec![' ', '\t', '\n', '\r']), 1..4)
        .prop_map(|chars| chars.into_iter().collect())
}

/// A code token that contains no whitespace, quotes or comment delimiters.
fn code_token() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "for", "$x", "in", "return", "1", "+", "fn:count", "//b", "=", "then", "else", "(1,2)",
    ])
    .prop_map(str::to_string)
}

/// A string literal with arbitrary (escaped) inner whitespace and quotes of
/// the other kind; `(kind, body)` where `kind` is `"` or `'`.
fn literal() -> impl Strategy<Value = String> {
    (
        proptest::bool::ANY,
        proptest::collection::vec(
            proptest::sample::select(vec!["a", "b", " ", "  ", "\t", "(:", ":)", "x y", "z"]),
            0..5,
        ),
    )
        .prop_map(|(double, parts)| {
            let quote = if double { '"' } else { '\'' };
            let body: String = parts.concat();
            // Escape the delimiter by doubling if it appears (it cannot
            // with the part alphabet above, but keep the constructor
            // total).
            let body = body.replace(quote, &format!("{quote}{quote}"));
            format!("{quote}{body}{quote}")
        })
}

/// A (possibly nested) comment whose body may contain quotes.
fn comment() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec!["\"", "'", "x", " ", "(: y :)", "q"]),
        0..4,
    )
    .prop_map(|parts| format!("(:{}:)", parts.concat()))
}

/// A random query assembled from tokens, literals, comments and whitespace.
fn query() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![code_token(), literal(), comment(), whitespace(),],
        1..12,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization is idempotent: a key is its own key.
    #[test]
    fn normalization_is_idempotent(q in query()) {
        let key = normalize_cache_key(&q);
        prop_assert_eq!(normalize_cache_key(&key), key);
    }

    /// Adding whitespace *between* parts never changes the key (that is
    /// the whole point of the normalization)…
    #[test]
    fn outside_whitespace_is_insignificant(
        parts in proptest::collection::vec(prop_oneof![code_token(), literal(), comment()], 1..8),
        pads in proptest::collection::vec(whitespace(), 0..8),
    ) {
        let compact = parts.join(" ");
        let mut padded = String::new();
        for (i, part) in parts.iter().enumerate() {
            padded.push_str(pads.get(i).map_or(" ", String::as_str));
            padded.push_str(part);
        }
        prop_assert_eq!(normalize_cache_key(&compact), normalize_cache_key(&padded));
    }

    /// …but whitespace *inside* a string literal is significant: two
    /// queries whose literals differ only in inner whitespace keep
    /// distinct keys, even when a comment containing a quote precedes the
    /// literal (the desync scenario).
    #[test]
    fn literal_bodies_keep_queries_distinct(
        prefix in prop_oneof![code_token(), comment()],
        spaces in 1usize..4,
    ) {
        let a = format!("{prefix} \"x{}y\"", " ".repeat(spaces));
        let b = format!("{prefix} \"x{}y\"", " ".repeat(spaces + 1));
        prop_assert_ne!(normalize_cache_key(&a), normalize_cache_key(&b));
    }

    /// Doubled-quote escapes round-trip: the escaped and the
    /// differently-spaced variants stay apart.
    #[test]
    fn doubled_quote_escapes_do_not_fold(spaces in 1usize..4) {
        let a = format!("\"he said \"\"hi{}there\"\"\"", " ".repeat(spaces));
        let b = format!("\"he said \"\"hi{}there\"\"\"", " ".repeat(spaces + 1));
        prop_assert_ne!(normalize_cache_key(&a), normalize_cache_key(&b));
        prop_assert!(normalize_cache_key(&a).contains("\"\"hi"));
    }

    /// Unterminated literals and comments normalize without panicking and
    /// still produce stable keys.
    #[test]
    fn unterminated_constructs_do_not_panic(q in query(), tail in prop_oneof![Just("\""), Just("'"), Just("(:")]) {
        let broken = format!("{q}{tail}");
        let key = normalize_cache_key(&broken);
        prop_assert_eq!(normalize_cache_key(&key), key);
    }

    /// Collapsing never merges tokens: distinct token sequences keep
    /// distinct keys (a space may shrink but never disappears).
    #[test]
    fn token_boundaries_survive(a in code_token(), b in code_token()) {
        let spaced = format!("{a} {b}");
        let glued = format!("{a}{b}");
        prop_assert_ne!(normalize_cache_key(&spaced), normalize_cache_key(&glued));
    }
}

/// Regression: constructor-heavy queries must scale ~linearly in the
/// iteration count.  The old `content_of_iteration` rescanned the whole
/// content table per loop row (O(iterations × rows)); with the one-pass
/// group index, quadrupling the iterations must not cost anywhere near
/// 16× the time.  The bound (10×) is far above linear noise and far below
/// the quadratic ratio, so the test is robust on slow or busy machines.
#[test]
fn constructor_queries_scale_linearly_in_iteration_count() {
    use std::time::{Duration, Instant};

    fn doc_with(n: usize) -> String {
        let mut xml = String::with_capacity(n * 16 + 16);
        xml.push_str("<r>");
        for i in 0..n {
            xml.push_str(&format!("<x>{i}</x>"));
        }
        xml.push_str("</r>");
        xml
    }

    // Best-of-3 wall time of the constructor query over n iterations.
    fn best_time(n: usize) -> Duration {
        let pf = pathfinder::engine::Pathfinder::new();
        pf.load_document("c.xml", &doc_with(n)).unwrap();
        let session = pf.session();
        let q = "for $x in fn:doc(\"c.xml\")//x return element e { $x/text() }";
        let warm = session.query(q).unwrap();
        assert_eq!(warm.len(), n);
        (0..3)
            .map(|_| {
                let started = Instant::now();
                session.query(q).unwrap();
                started.elapsed()
            })
            .min()
            .unwrap()
    }

    let small = 500usize;
    let large = 4 * small;
    let t_small = best_time(small).max(Duration::from_micros(50));
    let t_large = best_time(large);
    let ratio = t_large.as_secs_f64() / t_small.as_secs_f64();
    assert!(
        ratio < 10.0,
        "4× the iterations cost {ratio:.1}× the time — the quadratic \
         constructor gather is back ({t_small:?} → {t_large:?})"
    );
}

/// The optimizer-level tag that prefixes every plan-cache key must
/// round-trip through `OptimizerLevel::parse` and stay injective: two
/// different rule sets can never produce the same tag (else plans
/// compiled under different levels would alias in the cache).
#[test]
fn optimizer_level_tags_round_trip_and_never_collide() {
    use pathfinder::engine::OptimizerLevel;

    let mut seen = std::collections::HashMap::new();
    for bits in 0u8..32 {
        let level = OptimizerLevel {
            pushdown: bits & 1 != 0,
            reorder: bits & 2 != 0,
            dedup: bits & 4 != 0,
            unshare: bits & 8 != 0,
            indexscan: bits & 16 != 0,
        };
        let tag = level.tag();
        assert_eq!(
            OptimizerLevel::parse(&tag),
            Some(level),
            "tag {tag:?} must round-trip"
        );
        assert!(
            !tag.contains('\u{0}'),
            "tags must never contain the key separator"
        );
        if let Some(previous) = seen.insert(tag.clone(), level) {
            panic!("levels {previous:?} and {level:?} share the tag {tag:?}");
        }
        // The tag behaves like a cache-key component: normalization-stable.
        assert_eq!(pathfinder::engine::normalize_cache_key(&tag), tag);
    }
    assert_eq!(OptimizerLevel::parse(""), Some(OptimizerLevel::FULL));
    assert_eq!(OptimizerLevel::parse("garbage"), None);
}
