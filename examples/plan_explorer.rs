//! Plan explorer — the demonstration's "look under the hood" hooks
//! (Section 4 of the paper): print the relational plan of XMark queries at
//! both compilation stages, the operator histogram, and what the peephole
//! optimizer removed.
//!
//! Run with:
//! ```text
//! cargo run --example plan_explorer            # Figure 5 query
//! cargo run --example plan_explorer -- 8       # XMark Q8
//! ```

use pathfinder::engine::Pathfinder;
use pathfinder::xmark::query;

fn main() {
    let arg = std::env::args().nth(1);
    let (label, text) = match arg.as_deref() {
        Some(n) => {
            let id: u8 = n.parse().expect("query number 1-20");
            let q = query(id).expect("XMark query number 1-20");
            (format!("XMark Q{id} ({})", q.name), q.text.to_string())
        }
        None => (
            "Figure 5 query".to_string(),
            "for $v in (10,20) return $v + 100".to_string(),
        ),
    };

    let pf = Pathfinder::new();
    let explain = pf.explain(&text).expect("query compiles");

    println!("=== {label} ===\n{text}\n");
    println!(
        "operators: {} before optimization, {} after ({:.0} % reduction), {} join(s) recognized\n",
        explain.report.operators_before,
        explain.report.operators_after,
        explain.report.reduction_percent(),
        explain.joins_recognized
    );
    println!("operator histogram (optimized plan):");
    for (name, count) in explain.optimized.operator_histogram() {
        println!("  {name:<12} {count}");
    }
    println!("\noptimized plan (ASCII):\n{}", explain.plan_ascii());
    println!(
        "Graphviz DOT (render with `dot -Tpng`):\n{}",
        explain.plan_dot()
    );
}
