//! Auction analytics over a generated XMark document — the workload class
//! the paper's introduction motivates (querying large auction-site XML with
//! joins and aggregation), run against both engines.
//!
//! Run with:
//! ```text
//! cargo run --release --example auction_analytics
//! ```

use std::time::Instant;

use pathfinder::baseline::BaselineEngine;
use pathfinder::engine::Pathfinder;
use pathfinder::xmark::{generate, generate_stats, GeneratorConfig};

fn main() {
    let config = GeneratorConfig {
        scale: 0.02,
        seed: 20050831,
    };
    let stats = generate_stats(&config);
    let xml = generate(&config);
    println!(
        "generated auction.xml: {} bytes, {} persons, {} items, {} closed auctions",
        xml.len(),
        stats.persons,
        stats.items,
        stats.closed_auctions
    );

    let pf = Pathfinder::new();
    pf.load_document("auction.xml", &xml).unwrap();
    let mut nav = BaselineEngine::new();
    nav.load_document("auction.xml", &xml).unwrap();
    // Mirror the X-Hive tuning of Section 3.2: value indices on the join paths.
    nav.create_attribute_index("auction.xml", "buyer", "person")
        .unwrap();
    nav.create_attribute_index("auction.xml", "profile", "income")
        .unwrap();

    let analytics = [
        (
            "top-level volume",
            "fn:sum(fn:doc(\"auction.xml\")/site/closed_auctions/closed_auction/price)",
        ),
        (
            "buyers with at least one purchase",
            "count(for $p in fn:doc(\"auction.xml\")/site/people/person \
              where exists(for $t in fn:doc(\"auction.xml\")/site/closed_auctions/closed_auction \
                           where $t/buyer/@person = $p/@id return $t) return $p)",
        ),
        (
            "items per region",
            "for $r in fn:doc(\"auction.xml\")/site/regions return count($r//item)",
        ),
        (
            "expensive closed auctions",
            "count(fn:doc(\"auction.xml\")//closed_auction[number(price) > 200])",
        ),
    ];

    println!(
        "\n{:<38} {:>12} {:>12}  agreement",
        "analysis", "pathfinder", "navigational"
    );
    for (name, query) in analytics {
        let start = Instant::now();
        let relational = pf
            .session()
            .query(query)
            .expect("pathfinder evaluates the query");
        let pf_time = start.elapsed();
        let start = Instant::now();
        let navigational = nav.query(query).expect("baseline evaluates the query");
        let nav_time = start.elapsed();
        let agree = relational.to_xml() == navigational.to_xml();
        println!(
            "{:<38} {:>10.2?} {:>10.2?}  {}",
            name,
            pf_time,
            nav_time,
            if agree { "identical" } else { "MISMATCH" }
        );
    }

    let storage = pf.registry().storage_stats("auction.xml").unwrap();
    println!(
        "\nstorage: {} nodes encoded in {} bytes ({:.0} % of the XML serialization)",
        storage.nodes,
        storage.total_bytes(),
        storage.overhead_percent().unwrap_or(0.0)
    );
}
