//! Quickstart: load an XML document, run a few XQuery expressions, and look
//! under the hood of the relational compilation.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use pathfinder::engine::Pathfinder;

fn main() {
    // One engine, any number of concurrent sessions (`Session` is the
    // per-client handle; every engine entry point takes `&self`).
    let pf = Pathfinder::new();
    let session = pf.session();

    // A tiny auction-flavoured document.
    pf.load_document(
        "bids.xml",
        "<auctions>\
           <auction id=\"a1\"><item>clock</item><bid>12</bid><bid>19</bid></auction>\
           <auction id=\"a2\"><item>vase</item><bid>40</bid></auction>\
           <auction id=\"a3\"><item>lamp</item><bid>7</bid><bid>9</bid><bid>30</bid></auction>\
         </auctions>",
    )
    .expect("well-formed XML");

    // 1. Simple aggregation over a path.
    let total = session.query("fn:sum(fn:doc(\"bids.xml\")//bid)").unwrap();
    println!("total bid volume      : {}", total.to_xml());

    // 2. FLWOR with a predicate and element construction.
    let hot = session
        .query(
            "for $a in fn:doc(\"bids.xml\")//auction \
             where count($a/bid) >= 2 \
             return element hot { attribute id { $a/@id }, $a/item/text() }",
        )
        .unwrap();
    println!("auctions with >1 bid  : {}", hot.to_xml());

    // 3. The paper's Figure 3 query: nested iteration, loop-lifted.
    let fig3 = session
        .query("for $v in (10,20), $w in (100,200) return $v + $w")
        .unwrap();
    println!("figure 3 query        : {}", fig3.to_xml());

    // 4. Look under the hood: the relational plan of the Figure 5 query.
    let explain = session
        .explain("for $v in (10,20) return $v + 100")
        .unwrap();
    println!(
        "figure 5 plan         : {} operators before, {} after peephole optimization",
        explain.report.operators_before, explain.report.operators_after
    );
    println!("{}", explain.plan_ascii());
}
