//! Reproduce Figure 3 of the paper: the intermediate `iter|pos|item`
//! relations that arise when loop lifting evaluates
//! `for $v in (10,20), $w in (100,200) return $v + $w`.
//!
//! Run with:
//! ```text
//! cargo run --example loop_lifting
//! ```

use pathfinder::engine::Pathfinder;
use pathfinder::relational::ops::row_number;
use pathfinder::relational::{Table, Value};

fn main() {
    // Figure 3(a): the literal sequence (10,20) in the top-level scope s0.
    let fig3a =
        Table::iter_pos_item(vec![1, 1], vec![1, 2], vec![Value::Int(10), Value::Int(20)]).unwrap();
    println!("(a) (10,20) in scope s0:\n{}", fig3a.to_ascii());

    // Figure 3(b): row numbering introduces the iterations of scope s1 —
    // variable $v is bound to one item per iteration.
    let numbered = row_number(&fig3a, "inner", &["iter", "pos"], None).unwrap();
    let fig3b = Table::iter_pos_item(
        numbered
            .column("inner")
            .unwrap()
            .as_nats()
            .unwrap()
            .to_vec(),
        vec![1, 1],
        numbered.column("item").unwrap().iter_values().collect(),
    )
    .unwrap();
    println!("(b) $v in scope s1:\n{}", fig3b.to_ascii());

    // Figures 3(c)-(g) are produced by the engine itself; run the query and
    // show the final result, which must equal Figure 3(g)'s item column.
    let pf = Pathfinder::new();
    let result = pf
        .session()
        .query("for $v in (10,20), $w in (100,200) return $v + $w")
        .unwrap();
    println!("(g) overall result in scope s0: {}", result.to_xml());
    assert_eq!(result.to_xml(), "110 210 120 220");

    // And the compiled plan, for comparison with Figure 5's shape.
    let explain = pf.explain("for $v in (10,20) return $v + 100").unwrap();
    println!("\nFigure 5 plan:\n{}", explain.plan_ascii());
}
