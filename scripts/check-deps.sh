#!/usr/bin/env bash
# Assert that the workspace's dependency set stays minimal: every package in
# the resolved graph must be either a workspace crate (pathfinder / pf-*) or
# one of the two sanctioned external dependencies (rand, criterion — both
# currently satisfied by the vendored shims under vendor/).
#
# Run from the workspace root:  ./scripts/check-deps.sh
set -euo pipefail

allowed='^(pathfinder|pf-[a-z0-9-]+|rand|criterion)$'

packages=$(cargo tree --workspace --edges normal,dev,build --prefix none \
    | awk '{print $1}' | sort -u)

violations=$(echo "$packages" | grep -Ev "$allowed" || true)

if [ -n "$violations" ]; then
    echo "ERROR: unexpected dependencies in the workspace graph:" >&2
    echo "$violations" >&2
    echo >&2
    echo "The dependency policy allows only workspace crates plus rand and" >&2
    echo "criterion. If a new dependency is genuinely needed, vendor a shim" >&2
    echo "under vendor/ (see vendor/README.md) and update this allowlist." >&2
    exit 1
fi

count=$(echo "$packages" | wc -l)
echo "dependency check OK: $count packages, all workspace crates or sanctioned (rand, criterion)"
