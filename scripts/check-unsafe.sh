#!/usr/bin/env bash
# Assert the workspace's unsafe-code policy: every crate root carries
# `#![forbid(unsafe_code)]`, except pf-engine, which carries the one
# documented exemption — `#![deny(unsafe_code)]` with per-function
# `#[allow(unsafe_code)]` at the lifetime-erasure sites of its persistent
# worker pool (pool.rs / executor.rs).  The compiler enforces the
# attributes; this script enforces that the attributes are present, so a
# new crate (or a deleted line) cannot silently reopen the door.
#
# Run from the workspace root:  ./scripts/check-unsafe.sh
set -euo pipefail

status=0

check() {
    local file="$1" want="$2"
    if ! grep -qF "$want" "$file"; then
        echo "ERROR: $file is missing \`$want\`" >&2
        status=1
    fi
}

# The façade crate and every pf-* crate except the exempted engine.
check src/lib.rs '#![forbid(unsafe_code)]'
for lib in crates/*/src/lib.rs; do
    crate=$(basename "$(dirname "$(dirname "$lib")")")
    if [ "$crate" = "pf-engine" ]; then
        check "$lib" '#![deny(unsafe_code)]'
        if grep -qF '#![forbid(unsafe_code)]' "$lib"; then
            echo "ERROR: $lib must use deny (documented exemption), not forbid" >&2
            status=1
        fi
    else
        check "$lib" '#![forbid(unsafe_code)]'
    fi
done

# Outside pf-engine, no source file may even spell `unsafe_code` allows or
# contain an unsafe token (forbid makes these compile errors inside the
# crates; this also covers tests/, benches/ and bins which have their own
# crate roots).
stray=$(grep -rln --include='*.rs' -E '(^|[^a-z_])unsafe([^_a-z]|$)' \
    src tests crates --exclude-dir=pf-engine 2>/dev/null || true)
if [ -n "$stray" ]; then
    echo "ERROR: unsafe token found outside pf-engine:" >&2
    echo "$stray" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo >&2
    echo "The unsafe policy allows unsafe code only in pf-engine's worker" >&2
    echo "pool (lifetime erasure for scoped jobs), behind deny + scoped" >&2
    echo "allow. See crates/pf-engine/src/lib.rs." >&2
    exit 1
fi

echo "unsafe-code check OK: forbid everywhere, deny + scoped allows in pf-engine only"
