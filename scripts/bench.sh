#!/usr/bin/env bash
# Run the executor profiles over XMark Q1-Q20 and emit the machine-readable
# summaries:
#
#   BENCH_pr2.json — memory profile (peak resident cells vs retain-all)
#   BENCH_pr3.json — thread-scaling profile of the parallel executor
#                    (wall time at 1/2/4/8 threads; see PF_SCALING_THREADS
#                    and PF_SCALING_RUNS)
#
#   ./scripts/bench.sh                       # scale 0.05, default outputs
#   ./scripts/bench.sh 0.2                   # custom scale factor
#   ./scripts/bench.sh 0.2 mem.json scal.json  # custom scale and outputs
set -euo pipefail

cd "$(dirname "$0")/.."

scale="${1:-0.05}"
mem_out="${2:-BENCH_pr2.json}"
scaling_out="${3:-BENCH_pr3.json}"

cargo run --release -p pf-bench --bin mem_profile -- "$scale" "$mem_out"
cargo run --release -p pf-bench --bin thread_scaling -- "$scale" "$scaling_out"
