#!/usr/bin/env bash
# Run the executor profiles over XMark Q1-Q20 and emit the machine-readable
# summaries:
#
#   BENCH_pr2.json — memory profile (peak resident cells vs retain-all;
#                    fusion pinned off — the unfused baseline)
#   BENCH_pr3.json — thread-scaling profile of the parallel executor
#                    (wall time at 1/2/4/8 threads; see PF_SCALING_THREADS
#                    and PF_SCALING_RUNS)
#   BENCH_pr4.json — fusion profile (fused vs unfused physical plans:
#                    wall time, tables elided, peak cells; see
#                    PF_FUSION_RUNS)
#   BENCH_pr5.json — morsel profile (per-operator wall times at
#                    1/2/4/8 threads on the persistent pool, plus the
#                    constructor linear-scaling check; see
#                    PF_MORSEL_THREADS, PF_MORSEL_RUNS, PF_MORSEL)
#   BENCH_pr6.json — concurrent-serving profile (sustained QPS and
#                    p50/p99 latency of a mixed XMark stream at 1/4/8
#                    sessions on one shared engine; see PF_QPS_SESSIONS
#                    and PF_QPS_ROUNDS)
#   BENCH_pr7.json — join/aggregation kernel profile (per-operator wall
#                    of Q8-Q12 at 1/2/4/8 threads, plus the typed-vs-
#                    generic kernel comparison; see PF_JOIN_THREADS and
#                    PF_JOIN_RUNS)
#   BENCH_pr8.json — optimizer profile (basic vs full optimizer levels:
#                    rule counters — predicates pushed, subplans
#                    deduped, join clusters reordered, chains unshared —
#                    plus wall time and tables-elided share; see
#                    PF_OPTIMIZE_RUNS)
#   BENCH_pr9.json — index profile (full-scan vs index-accelerated
#                    predicates: wall and predicate-portion times for
#                    Q1/Q5/Q14 plus selective synthetic probes, index
#                    build time and sidecar size; see PF_INDEX_RUNS)
#   BENCH_pr10.json — verifier profile (plan verification off vs on:
#                    optimize-time and end-to-end wall deltas, verifier
#                    pass counts and per-rule verifier nanos; see
#                    PF_VERIFY_RUNS)
#
#   ./scripts/bench.sh                       # scale 0.05, default outputs
#   ./scripts/bench.sh 0.2                   # custom scale factor
#   ./scripts/bench.sh 0.2 mem.json scal.json fus.json morsel.json qps.json join.json opt.json idx.json verify.json
set -euo pipefail

cd "$(dirname "$0")/.."

scale="${1:-0.05}"
mem_out="${2:-BENCH_pr2.json}"
scaling_out="${3:-BENCH_pr3.json}"
fusion_out="${4:-BENCH_pr4.json}"
morsel_out="${5:-BENCH_pr5.json}"
qps_out="${6:-BENCH_pr6.json}"
join_out="${7:-BENCH_pr7.json}"
opt_out="${8:-BENCH_pr8.json}"
index_out="${9:-BENCH_pr9.json}"
verify_out="${10:-BENCH_pr10.json}"

cargo run --release -p pf-bench --bin mem_profile -- "$scale" "$mem_out"
cargo run --release -p pf-bench --bin thread_scaling -- "$scale" "$scaling_out"
# Threads pinned to 1 so the peak-cell numbers are schedule-independent.
cargo run --release -p pf-bench --bin fusion_profile -- "$scale" "$fusion_out" 1
cargo run --release -p pf-bench --bin morsel_profile -- "$scale" "$morsel_out"
cargo run --release -p pf-bench --bin qps_bench -- "$scale" "$qps_out"
cargo run --release -p pf-bench --bin join_profile -- "$scale" "$join_out"
# Threads pinned to 1 so level-vs-level wall times compare plans, not
# schedules (the bin asserts basic/full byte-agreement on every run).
cargo run --release -p pf-bench --bin optimize_profile -- "$scale" "$opt_out" 1
# Threads pinned to 1 so the predicate-portion speedups measure the index
# probes, not the scheduler (the bin asserts scan/indexed byte-agreement).
cargo run --release -p pf-bench --bin index_profile -- "$scale" "$index_out" 1
# Threads pinned to 1 so the off/on wall delta isolates the verifier (the
# bin asserts verified/unverified byte-agreement on every query).
cargo run --release -p pf-bench --bin verify_profile -- "$scale" "$verify_out" 1
