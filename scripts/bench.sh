#!/usr/bin/env bash
# Run the executor memory profile over XMark Q1-Q20 and emit the
# machine-readable summary BENCH_pr2.json.
#
#   ./scripts/bench.sh                # scale 0.05, writes BENCH_pr2.json
#   ./scripts/bench.sh 0.2           # custom scale factor
#   ./scripts/bench.sh 0.2 out.json  # custom scale and output path
set -euo pipefail

cd "$(dirname "$0")/.."

scale="${1:-0.05}"
out="${2:-BENCH_pr2.json}"

cargo run --release -p pf-bench --bin mem_profile -- "$scale" "$out"
