//! # Pathfinder: XQuery — The Relational Way
//!
//! An end-to-end Rust reproduction of the Pathfinder relational XQuery
//! processor (Boncz, Grust, van Keulen, Manegold, Rittinger, Teubner;
//! VLDB 2005).
//!
//! The crate re-exports the individual subsystems so that applications can
//! depend on a single `pathfinder` crate:
//!
//! * [`xml`] — XML parsing and document model ([`pf_xml`])
//! * [`store`] — the `pre|size|level` XPath Accelerator encoding and the
//!   staircase join ([`pf_store`])
//! * [`relational`] — the MonetDB-style in-memory column store
//!   ([`pf_relational`])
//! * [`algebra`] — the Table 1 relational algebra, peephole optimizer and
//!   plan rendering ([`pf_algebra`])
//! * [`xquery`] — the XQuery front end and loop-lifting compiler
//!   ([`pf_xquery`])
//! * [`engine`] — the end-to-end Pathfinder engine ([`pf_engine`])
//! * [`baseline`] — the navigational comparator engine ([`pf_baseline`])
//! * [`xmark`] — the XMark data generator and the 20 benchmark queries
//!   ([`pf_xmark`])
//!
//! ## Quickstart
//!
//! ```
//! use pathfinder::engine::Pathfinder;
//!
//! let mut pf = Pathfinder::new();
//! pf.load_document("doc.xml", "<a><b>1</b><b>2</b></a>").unwrap();
//! let result = pf.query("fn:sum(fn:doc(\"doc.xml\")//b)").unwrap();
//! assert_eq!(result.to_xml(), "3");
//! ```

#![forbid(unsafe_code)]

pub use pf_algebra as algebra;
pub use pf_baseline as baseline;
pub use pf_engine as engine;
pub use pf_relational as relational;
pub use pf_store as store;
pub use pf_xmark as xmark;
pub use pf_xml as xml;
pub use pf_xquery as xquery;

/// Crate version of the umbrella `pathfinder` package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
