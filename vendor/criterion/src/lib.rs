//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace.
//!
//! See `vendor/README.md` for scope. Each benchmark warms up for the
//! configured warm-up time, then repeatedly times single iterations until
//! the measurement time budget is spent (bounded below by the sample size),
//! and prints mean / median / min wall-clock figures. There is no outlier
//! rejection, regression analysis or HTML report — this is a thin harness
//! that keeps `cargo bench` runnable and its numbers honest on an offline
//! box.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identity function that hides `x` from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    config: Config,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly; one sample = one call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
        }
        // Measurement: record per-call wall-clock times until both the
        // sample floor and the time budget are met.
        let measure_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            let enough_samples = self.samples.len() >= self.config.sample_size;
            let out_of_budget = measure_start.elapsed() >= self.config.measurement_time;
            if enough_samples && out_of_budget {
                break;
            }
            // Hard cap so very fast routines terminate promptly.
            if self.samples.len() >= 50 * self.config.sample_size {
                break;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Parse command-line configuration. The shim accepts and ignores the
    /// harness arguments cargo passes (`--bench`, filters, ...).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            config: self.config,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.config;
        run_one(&id.to_string(), config, f);
        self
    }

    /// Print the trailing summary (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Minimum number of recorded samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Target measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&format!("{}/{}", self.name, id), self.config, f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F>(label: &str, config: Config, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut samples = Vec::with_capacity(config.sample_size);
    let mut bencher = Bencher {
        samples: &mut samples,
        config,
    };
    f(&mut bencher);
    if samples.is_empty() {
        println!("{label:<40} (no samples recorded)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<40} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(min),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group function named `$name` that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_at_least_sample_size() {
        let config = Config {
            sample_size: 5,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
        };
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            config,
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            counter
        });
        assert!(samples.len() >= 5);
        assert!(counter > samples.len() as u64, "warm-up must also run");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("parse", "Q1").to_string(), "parse/Q1");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }
}
