//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! See `vendor/README.md` for scope and caveats. The core generator is
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, which gives
//! deterministic, well-distributed streams for test-data generation. It is
//! deliberately **not** bit-compatible with the real `StdRng` and must not
//! be used for anything security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait (the shim's analogue of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the shim's analogue of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits by
/// [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, matching the precision of
    /// the real `Standard` distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts (the shim's analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard the half-open bound against rounding up on very
                // wide spans (`unit` < 1 does not guarantee `v` < end).
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// The user-facing sampling methods, blanket-implemented for every core RNG
/// (the shim's analogue of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full range (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`, which may be half-open (`lo..hi`) or
    /// inclusive (`lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ behind the name the
    /// real crate uses. Deterministic per seed; not ChaCha12-compatible.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}
